//! The event-driven cluster runtime.
//!
//! PR 3's cluster layer planned placement once and dispatched open-loop
//! — "plan once, dispatch forever". This module turns that into a
//! **control loop**: the run is divided into control *ticks*, and the
//! runtime interleaves dispatch with periodic control actions:
//!
//! * **telemetry feedback** — at every tick boundary each node's engine
//!   run reports what actually happened (finish time, busy time,
//!   admitted/dropped counts); under
//!   [`FeedbackMode::Corrected`](crate::dispatch::FeedbackMode) the
//!   [`Dispatcher`] folds those observations back into its work-left
//!   estimates instead of letting open-loop prediction error accumulate;
//! * **failure injection** — a [`FailureSchedule`] kills and revives
//!   nodes mid-run. On a kill, the dying node's not-yet-served requests
//!   are pulled back and re-routed to survivors, and (unless the
//!   re-placement policy is [`ReplacementPolicy::Static`]) the planner
//!   derives a successor [`PlacementPlan`] that re-replicates the dead
//!   node's orphaned shard, shipping the [`migration_plan`] delta over
//!   the *same fabric links requests use*;
//! * **online re-placement** — under [`ReplacementPolicy::Drift`] the
//!   runtime tracks the observed expert mix and, when it diverges from
//!   the plan's usage basis beyond a threshold, re-plans from the
//!   observed usage and migrates the delta.
//!
//! Work is quantized at tick granularity: each tick's routed requests
//! are served to completion by the per-node engines (an engine run *is*
//! the node's simulation of that slice), and the next tick's routing
//! sees the resulting telemetry. A kill mid-tick pulls back the dying
//! node's entire un-flushed buffer — the node only starts a tick's
//! work at the tick boundary, so that buffer is exactly the in-flight
//! work — and re-routes it to survivors with arrivals floored at the
//! failure instant; work served in earlier ticks already drained.
//!
//! Everything stays deterministic bit for bit: the failure schedule,
//! migrations and feedback are all pure functions of the inputs.

use std::collections::BTreeMap;
use std::fmt;

use coserve_core::config::{AdmissionControl, SystemConfig};
use coserve_faults::{FaultPlan, LinkOutcome};
use coserve_metrics::cluster::{ClusterReport, FailureRecord, FleetDynamics, TickStat};
use coserve_metrics::faults::FaultLedger;
use coserve_metrics::report::RunReport;
use coserve_metrics::stats::Summary;
use coserve_model::expert::ExpertId;
use coserve_sim::events::Calendar;
use coserve_sim::network::NodeId;
use coserve_sim::time::{SimSpan, SimTime};
use coserve_sim::transfer::TransferRoute;
use coserve_trace::{NoopTracer, TraceEvent, TraceKind, Tracer};
use coserve_workload::stream::{Job, JobId, RequestStream};

use crate::dispatch::{Dispatcher, FeedbackMode, NodeLoadModel, RouteFaults, Routing};
use crate::placement::{migration_plan, MigrationPlan, PlacementPlan};
use crate::ClusterSystem;

/// Whether a scheduled failure event kills or revives its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// The node dies: its buffered work re-routes, its shard orphans.
    Kill,
    /// The node comes back empty (its pools and shard must be refilled
    /// by re-placement).
    Revive,
}

/// One scheduled kill or revive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// When the event fires.
    pub at: SimTime,
    /// The node it targets.
    pub node: usize,
    /// Kill or revive.
    pub kind: FailureKind,
}

/// A deterministic mid-run failure script: kills and revives applied at
/// fixed simulation times, in time order (ties: node, then kill before
/// revive).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// An empty schedule (no failures).
    #[must_use]
    pub fn new() -> Self {
        FailureSchedule::default()
    }

    /// Schedules `node` to die at `at`.
    #[must_use]
    pub fn kill(mut self, node: usize, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            node,
            kind: FailureKind::Kill,
        });
        self.sort();
        self
    }

    /// Schedules `node` to come back at `at`.
    #[must_use]
    pub fn revive(mut self, node: usize, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            node,
            kind: FailureKind::Revive,
        });
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.events.sort_by_key(|e| (e.at, e.node, e.kind));
    }

    /// The events in firing order.
    #[must_use]
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The largest node index any event names.
    #[must_use]
    pub fn max_node(&self) -> Option<usize> {
        self.events.iter().map(|e| e.node).max()
    }
}

/// How the runtime re-plans placement while the fleet changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplacementPolicy {
    /// Never touch the offline plan: a dead node's shard stays orphaned
    /// and requests needing it are rejected (the paper's static
    /// baseline under failures).
    Static,
    /// Re-replicate a dead node's orphans onto survivors and rebalance
    /// onto revived nodes; no drift tracking.
    OnFailure,
    /// [`ReplacementPolicy::OnFailure`] plus drift-triggered
    /// re-placement: when the observed expert mix diverges from the
    /// plan's usage basis by more than `threshold` (total-variation
    /// distance in `[0, 1]`), re-plan from the observed usage.
    Drift {
        /// Total-variation distance that triggers a re-plan.
        threshold: f64,
    },
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Static => write!(f, "static"),
            ReplacementPolicy::OnFailure => write!(f, "re-replicate"),
            ReplacementPolicy::Drift { threshold } => write!(f, "drift({threshold})"),
        }
    }
}

/// Minimum observed stages before a drift re-plan may trigger — fewer
/// samples would chase sampling noise, not real drift.
const DRIFT_MIN_SAMPLES: u64 = 64;

/// Options for one [`ClusterSystem::serve_runtime`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Control-tick length; `None` runs a single tick spanning the
    /// whole stream (the one-shot behaviour of
    /// [`ClusterSystem::serve`], with no feedback opportunities).
    pub tick: Option<SimSpan>,
    /// Mid-run kills and revives.
    pub failures: FailureSchedule,
    /// How placement reacts to failures and drift.
    pub replacement: ReplacementPolicy,
    /// Whether dispatch estimates stay open-loop or are corrected from
    /// node telemetry at every tick.
    pub feedback: FeedbackMode,
    /// The latency SLO the per-tick attainment accounting scores
    /// against.
    pub slo: SimSpan,
    /// Per-node online overrides (admission bound, grouping starvation
    /// bound), as in [`ClusterSystem::serve_with_online`].
    pub online: Option<(AdmissionControl, u32)>,
    /// Queue-depth-aware dispatcher pacing: per-node per-tick send
    /// budgets derived from the admitted/dropped telemetry, so a node
    /// whose admission queue overflowed last tick is not fed another
    /// oversized burst this tick (see
    /// [`Dispatcher::observe_admission`]). Off by default — pacing off
    /// is bit-identical to the un-paced runtime.
    pub pacing: bool,
    /// Deterministic fault schedule for the fabric (link dilation and
    /// partitions, sampled per routed job and per migration move) and
    /// the fleet (slow-node service dilation, sampled per tick). A
    /// disabled plan (the default) is never consulted, keeping the run
    /// bit-identical to a fault-free one.
    pub faults: FaultPlan,
    /// Partition recovery at the front-end: when the chosen route
    /// target is cut off from every live holder of a chain stage, hedge
    /// the job to the best reachable candidate instead of degrading the
    /// stage to a local checkpoint read. On by default; only consulted
    /// while a fault plan is armed.
    pub hedge: bool,
}

impl Default for RuntimeOptions {
    /// One-shot: a single tick, no failures, failure-reactive
    /// re-placement armed (it never fires without failures), open-loop
    /// estimates, a 250 ms SLO and no online overrides.
    fn default() -> Self {
        RuntimeOptions {
            tick: None,
            failures: FailureSchedule::new(),
            replacement: ReplacementPolicy::OnFailure,
            feedback: FeedbackMode::OpenLoop,
            slo: SimSpan::from_millis(250),
            online: None,
            pacing: false,
            faults: FaultPlan::disabled(),
            hedge: true,
        }
    }
}

impl RuntimeOptions {
    /// Replaces the control-tick length.
    #[must_use]
    pub fn tick(mut self, tick: SimSpan) -> Self {
        self.tick = Some(tick);
        self
    }

    /// Replaces the failure schedule.
    #[must_use]
    pub fn failures(mut self, failures: FailureSchedule) -> Self {
        self.failures = failures;
        self
    }

    /// Replaces the re-placement policy.
    #[must_use]
    pub fn replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Replaces the feedback mode.
    #[must_use]
    pub fn feedback(mut self, feedback: FeedbackMode) -> Self {
        self.feedback = feedback;
        self
    }

    /// Replaces the SLO.
    #[must_use]
    pub fn slo(mut self, slo: SimSpan) -> Self {
        self.slo = slo;
        self
    }

    /// Replaces the online overrides.
    #[must_use]
    pub fn online(mut self, admission: AdmissionControl, max_overtake: u32) -> Self {
        self.online = Some((admission, max_overtake));
        self
    }

    /// Enables (or disables) queue-depth-aware dispatcher pacing.
    #[must_use]
    pub fn pacing(mut self, pacing: bool) -> Self {
        self.pacing = pacing;
        self
    }

    /// Arms a fault plan.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables (or disables) hedged re-routing around partitions.
    #[must_use]
    pub fn hedge(mut self, hedge: bool) -> Self {
        self.hedge = hedge;
        self
    }
}

impl ClusterSystem {
    /// Serves `stream` through the dynamic cluster runtime: tick-driven
    /// dispatch with telemetry feedback, failure injection with
    /// re-routing and re-replication, and drift-triggered re-placement,
    /// all per `options`. [`ClusterSystem::serve`] and
    /// [`ClusterSystem::serve_with_online`] are this with
    /// [`RuntimeOptions::default`] (single tick, no failures).
    ///
    /// # Panics
    ///
    /// Panics when the failure schedule names a node outside the fleet
    /// or a tick of zero length is supplied.
    #[must_use]
    pub fn serve_runtime(&self, stream: &RequestStream, options: &RuntimeOptions) -> ClusterReport {
        let mut noop = NoopTracer;
        self.serve_runtime_traced(stream, options, &mut noop)
    }

    /// [`ClusterSystem::serve_runtime`] with a structured-event
    /// collector: fleet control actions — kills, revivals, migration
    /// start/land, re-plans, front-end sheds — are recorded into
    /// `tracer`, stamped with their node and simulation time. With a
    /// disabled tracer this is exactly `serve_runtime` (every emission
    /// site is guarded by `enabled()`).
    ///
    /// # Panics
    ///
    /// Panics when the failure schedule names a node outside the fleet
    /// or a tick of zero length is supplied.
    #[must_use]
    pub fn serve_runtime_traced(
        &self,
        stream: &RequestStream,
        options: &RuntimeOptions,
        tracer: &mut dyn Tracer,
    ) -> ClusterReport {
        if let Some(max) = options.failures.max_node() {
            assert!(
                max < self.num_nodes(),
                "failure schedule names node {max} of a {}-node fleet",
                self.num_nodes()
            );
        }
        if let Some(tick) = options.tick {
            assert!(tick > SimSpan::ZERO, "control tick must be positive");
        }
        let mut runtime = Runtime::new(self, options, tracer);
        runtime.run(stream)
    }
}

/// Control-calendar lane for scheduled failure events. Failures are
/// pushed before arrivals, so at an exact shared instant the failure
/// fires first — the calendar's FIFO tie-break reproduces the historic
/// "events at or before the next arrival apply first" rule bit for bit.
const LANE_FAILURES: usize = 0;
/// Control-calendar lane for job arrivals (non-decreasing by the
/// [`RequestStream`] invariant, so every push is a lane append).
const LANE_ARRIVALS: usize = 1;
/// Number of control-calendar lanes.
const CTRL_LANES: usize = 2;

/// One entry in the runtime's control calendar: the tick loop is driven
/// off the same event-calendar primitive as the per-node engines, so
/// control ticks are calendar pops rather than a second clock.
#[derive(Debug, Clone, Copy)]
enum CtrlEv {
    /// Stream job at this index reaches the front-end.
    Arrive(usize),
    /// A scheduled kill or revive fires.
    Failure(FailureEvent),
}

/// The mutable state of one runtime run.
struct Runtime<'a> {
    sys: &'a ClusterSystem,
    options: &'a RuntimeOptions,
    loads: Vec<NodeLoadModel<'a>>,
    configs: Vec<SystemConfig>,
    dispatcher: Dispatcher,
    plan: PlacementPlan,
    alive: Vec<bool>,
    /// Jobs routed during the current tick, per node.
    buffers: Vec<Vec<Job>>,
    /// Per-node reports accumulated across ticks.
    merged: Vec<Option<RunReport>>,
    dynamics: FleetDynamics,
    /// When each recently migrated expert's new copies become usable;
    /// requests touching one are delayed to its completion.
    available_at: BTreeMap<ExpertId, SimTime>,
    /// Observed per-expert stage counts (drift telemetry).
    observed: Vec<u64>,
    observed_total: u64,
    // Per-tick counters.
    tick_routed: usize,
    tick_routing_dropped: usize,
    tick_latencies: Vec<SimSpan>,
    /// Fleet-event sink; every emission guarded by `enabled()` so a
    /// [`NoopTracer`] keeps the run bit-identical to the untraced path.
    tracer: &'a mut (dyn Tracer + 'a),
    /// The armed fault plan; `None` when the options carry a disabled
    /// plan, so the fault-free path never consults it.
    faults: Option<&'a FaultPlan>,
    /// Injection/recovery accounting; lands in the report's
    /// [`FleetDynamics::faults`].
    ledger: FaultLedger,
}

impl<'a> Runtime<'a> {
    fn new(
        sys: &'a ClusterSystem,
        options: &'a RuntimeOptions,
        tracer: &'a mut (dyn Tracer + 'a),
    ) -> Self {
        let n = sys.num_nodes();
        let loads: Vec<NodeLoadModel<'a>> = sys
            .nodes()
            .iter()
            .map(|s| NodeLoadModel {
                perf: s.perf(),
                executors: s.config().executors.len(),
                has_gpu: s.config().gpu_executor_count() > 0,
            })
            .collect();
        let configs: Vec<SystemConfig> = sys
            .nodes()
            .iter()
            .map(|s| {
                let mut config = s.config().clone();
                if let Some((admission, max_overtake)) = options.online {
                    config.admission = Some(admission);
                    config.max_overtake = Some(max_overtake);
                }
                config
            })
            .collect();
        let dispatcher = Dispatcher::new(
            n,
            sys.options().route,
            sys.options().activation_bytes,
            options.feedback,
            true,
        )
        .with_pacing(options.pacing);
        Runtime {
            sys,
            options,
            loads,
            configs,
            dispatcher,
            plan: sys.plan().clone(),
            alive: vec![true; n],
            buffers: vec![Vec::new(); n],
            merged: (0..n).map(|_| None).collect(),
            dynamics: FleetDynamics::default(),
            available_at: BTreeMap::new(),
            observed: vec![0; sys.model().num_experts()],
            observed_total: 0,
            tick_routed: 0,
            tick_routing_dropped: 0,
            tick_latencies: Vec::new(),
            tracer,
            faults: (!options.faults.is_disabled()).then_some(&options.faults),
            ledger: FaultLedger::default(),
        }
    }

    /// Records one fleet event; call sites guard with
    /// `tracer.enabled()` so the disabled path constructs nothing.
    fn emit(&mut self, at: SimTime, node: u32, kind: TraceKind) {
        self.tracer.record(TraceEvent { at, node, kind });
    }

    fn run(&mut self, stream: &RequestStream) -> ClusterReport {
        let jobs = stream.jobs();
        // Failures first: at a shared instant their smaller sequence
        // numbers pop ahead of the arrival, as the historic merge did.
        let mut calendar: Calendar<CtrlEv> = Calendar::new(CTRL_LANES);
        for &event in self.options.failures.events() {
            calendar.push_lane(LANE_FAILURES, event.at, CtrlEv::Failure(event));
        }
        for (index, job) in jobs.iter().enumerate() {
            calendar.push_lane(LANE_ARRIVALS, job.arrival, CtrlEv::Arrive(index));
        }
        let mut arrivals_left = jobs.len();
        let mut tick_start = SimTime::ZERO;
        let mut tick_index = 0u32;

        loop {
            // Exact skip-ahead over empty control ticks: nothing fires
            // before the next tick boundary, an empty flush publishes
            // no tick stat, and no drift re-plan is pending, so jump
            // the clock arithmetically to the tick holding the next
            // calendar entry instead of spinning through the gap one
            // empty tick at a time.
            if let Some(t) = self.options.tick {
                if arrivals_left > 0 && !self.drift_replan_pending() {
                    if let Some(next) = calendar.peek_time() {
                        let gap = next.saturating_since(tick_start);
                        if gap >= t {
                            let whole = gap.nanos() / t.nanos();
                            tick_start += SimSpan::from_nanos(whole * t.nanos());
                            tick_index += whole as u32;
                        }
                    }
                }
            }
            let tick_end = self.options.tick.map(|t| tick_start + t);
            self.dispatcher.begin_tick();

            loop {
                let popped = match tick_end {
                    Some(end) => calendar.pop_before(end),
                    None => calendar.pop(),
                };
                let Some(scheduled) = popped else { break };
                match scheduled.payload {
                    CtrlEv::Arrive(index) => {
                        arrivals_left -= 1;
                        let job = &jobs[index];
                        self.tick_routed += 1;
                        for &e in &job.stages {
                            self.observed[e.index()] += 1;
                        }
                        self.observed_total += job.stages.len() as u64;
                        self.route(job.clone(), None);
                    }
                    CtrlEv::Failure(event) => self.apply_event(event),
                }
            }

            let flush_end = tick_end.unwrap_or_else(|| stream.last_arrival());
            self.flush_tick(tick_index, tick_start, flush_end, stream.name());
            self.maybe_drift_replan(flush_end);
            tick_index += 1;

            if arrivals_left == 0 {
                // Buffers are flushed; remaining events only mutate the
                // plan/alive state and the failure ledger.
                while let Some(scheduled) = calendar.pop() {
                    match scheduled.payload {
                        CtrlEv::Failure(event) => self.apply_event(event),
                        CtrlEv::Arrive(_) => unreachable!("no arrivals left to pop"),
                    }
                }
                break;
            }
            tick_start = tick_end.expect("arrivals remain only under finite ticks");
        }

        self.assemble(stream)
    }

    /// The pre-calendar control loop, kept verbatim as the equivalence
    /// oracle: index-scanning merge of the job stream and the failure
    /// schedule, advancing tick by tick with no skip-ahead. The
    /// calendar-driven [`Runtime::run`] must match it bit for bit.
    #[cfg(test)]
    fn run_reference(&mut self, stream: &RequestStream) -> ClusterReport {
        let events = self.options.failures.events().to_vec();
        let jobs = stream.jobs();
        let (mut ji, mut ev) = (0usize, 0usize);
        let mut tick_start = SimTime::ZERO;
        let mut tick_index = 0u32;

        loop {
            let tick_end = self.options.tick.map(|t| tick_start + t);
            let in_tick = |at: SimTime| tick_end.is_none_or(|end| at < end);
            self.dispatcher.begin_tick();

            while ji < jobs.len() && in_tick(jobs[ji].arrival) {
                while ev < events.len() && events[ev].at <= jobs[ji].arrival {
                    self.apply_event(events[ev]);
                    ev += 1;
                }
                let job = &jobs[ji];
                ji += 1;
                self.tick_routed += 1;
                for &e in &job.stages {
                    self.observed[e.index()] += 1;
                }
                self.observed_total += job.stages.len() as u64;
                self.route(job.clone(), None);
            }
            // Events later in the tick fire after its last arrival.
            while ev < events.len() && in_tick(events[ev].at) {
                self.apply_event(events[ev]);
                ev += 1;
            }

            let flush_end = tick_end.unwrap_or_else(|| stream.last_arrival());
            self.flush_tick(tick_index, tick_start, flush_end, stream.name());
            self.maybe_drift_replan(flush_end);
            tick_index += 1;

            if ji >= jobs.len() {
                while ev < events.len() {
                    self.apply_event(events[ev]);
                    ev += 1;
                }
                break;
            }
            tick_start = tick_end.expect("jobs remain only under finite ticks");
        }

        self.assemble(stream)
    }

    /// Routes one job (optionally floored to a re-route instant) into a
    /// node buffer, or records a front-end rejection.
    fn route(&mut self, mut job: Job, floor: Option<SimTime>) {
        if !self.alive.iter().any(|&a| a) {
            self.dynamics.routing_dropped += 1;
            self.tick_routing_dropped += 1;
            if self.tracer.enabled() {
                self.emit(
                    job.arrival,
                    0,
                    TraceKind::Shed {
                        job: job.id.0,
                        paced: false,
                    },
                );
            }
            return;
        }
        if let Some(at) = floor {
            job.arrival = job.arrival.max(at);
        }
        let hedge = self.options.hedge;
        let route_faults = self.faults.map(|plan| RouteFaults {
            plan,
            ledger: &mut self.ledger,
            hedge,
        });
        match self.dispatcher.route_job_with_faults(
            &job,
            self.sys.model(),
            &self.plan,
            self.sys.fabric(),
            &self.loads,
            &self.alive,
            route_faults,
        ) {
            Routing::Routed { node, mut job } => {
                // A chain touching an in-flight migrated expert waits
                // for its copy to land.
                let mut arrival = job.arrival;
                for e in &job.stages {
                    if let Some(&ready) = self.available_at.get(e) {
                        arrival = arrival.max(ready);
                    }
                }
                job.arrival = arrival;
                self.buffers[node].push(job);
            }
            Routing::Unhosted { .. } => {
                self.dynamics.routing_dropped += 1;
                self.tick_routing_dropped += 1;
                if self.tracer.enabled() {
                    self.emit(
                        job.arrival,
                        0,
                        TraceKind::Shed {
                            job: job.id.0,
                            paced: false,
                        },
                    );
                }
            }
            Routing::Paced => {
                self.dynamics.paced_shed += 1;
                self.tick_routing_dropped += 1;
                if self.tracer.enabled() {
                    self.emit(
                        job.arrival,
                        0,
                        TraceKind::Shed {
                            job: job.id.0,
                            paced: true,
                        },
                    );
                }
            }
        }
    }

    fn apply_event(&mut self, event: FailureEvent) {
        match event.kind {
            FailureKind::Kill => self.kill(event.node, event.at),
            FailureKind::Revive => self.revive(event.node, event.at),
        }
    }

    fn kill(&mut self, node: usize, at: SimTime) {
        if !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        // The dispatcher's estimate state for the node dies with it:
        // its predicted backlog is re-charged to the re-route targets,
        // and a later revival starts from a clean slate.
        self.dispatcher.forget_node(node);
        // Pull back the dying node's not-yet-started work: the per-node
        // engine only starts a tick's buffer at the flush, so the whole
        // current buffer is in flight at the front-end but unserved at
        // the node. Re-routed arrivals are floored at the failure
        // instant (the re-route cannot happen before the failure is
        // observed).
        let pulled: Vec<Job> = self.buffers[node].drain(..).collect();
        if self.tracer.enabled() {
            self.emit(
                at,
                node as u32,
                TraceKind::NodeKilled {
                    rerouted: pulled.len() as u32,
                },
            );
        }
        // Re-replicate the orphaned shard before re-routing, so pulled
        // requests whose experts lived only here stay servable.
        let recovered_at = if self.replaces() && self.alive.iter().any(|&a| a) {
            let next = self.plan.rehosted(self.sys.model(), &self.alive);
            let migration = migration_plan(&self.plan, &next, self.sys.model(), &self.alive);
            let done = self.migrate(&migration, next.version(), at);
            self.plan = next;
            Some(done)
        } else {
            None
        };
        self.dynamics.failures.push(FailureRecord {
            node,
            failed_at: at,
            recovered_at,
            revived_at: None,
        });
        self.dynamics.rerouted += pulled.len() as u64;
        for job in pulled {
            self.route(job, Some(at));
        }
    }

    fn revive(&mut self, node: usize, at: SimTime) {
        if self.alive[node] {
            return;
        }
        self.alive[node] = true;
        if self.tracer.enabled() {
            self.emit(at, node as u32, TraceKind::NodeRevived);
        }
        if self.replaces() {
            // The node comes back empty: rebalance the layout onto the
            // restored fleet and ship it its share.
            let next = self.plan.replanned(self.sys.model(), &self.alive, None);
            let migration = migration_plan(&self.plan, &next, self.sys.model(), &self.alive);
            let _ = self.migrate(&migration, next.version(), at);
            self.plan = next;
        }
        if let Some(record) = self
            .dynamics
            .failures
            .iter_mut()
            .rev()
            .find(|r| r.node == node && r.revived_at.is_none())
        {
            record.revived_at = Some(at);
        }
    }

    fn replaces(&self) -> bool {
        self.options.replacement != ReplacementPolicy::Static
    }

    /// Charges a migration's expert copies — fabric transfers from live
    /// donors, local checkpoint reloads when none survives — and
    /// returns when the last copy lands.
    fn migrate(&mut self, migration: &MigrationPlan, new_version: u64, at: SimTime) -> SimTime {
        if self.tracer.enabled() {
            self.emit(
                at,
                0,
                TraceKind::Replanned {
                    version: new_version,
                    moves: migration.moves.len() as u32,
                },
            );
        }
        let mut done_latest = at;
        for mv in &migration.moves {
            let bytes = self.sys.model().weight_bytes(mv.expert);
            // A partitioned donor link degrades the move to a local
            // checkpoint reload on the receiver; a dilated one stretches
            // the copy. Healthy links (and no plan) charge the profiled
            // fabric transfer exactly as before.
            let link = match mv.from {
                Some(from) => self
                    .faults
                    .map_or(LinkOutcome::Healthy, |p| p.link(from, mv.to, at)),
                None => LinkOutcome::Healthy,
            };
            let duration = match (mv.from, link) {
                (None, _) => self.sys.nodes()[mv.to]
                    .device()
                    .transfer_duration(bytes, TransferRoute::SsdToCpu),
                (Some(from), LinkOutcome::Partitioned) => {
                    self.ledger.link_partitioned += 1;
                    self.ledger.degraded_local += 1;
                    self.ledger.note_fault(at);
                    self.ledger.note_recovery(at);
                    if self.tracer.enabled() {
                        self.emit(
                            at,
                            mv.to as u32,
                            TraceKind::LinkFault {
                                from: from as u32,
                                to: mv.to as u32,
                                partitioned: true,
                                extra: SimSpan::ZERO,
                            },
                        );
                    }
                    self.sys.nodes()[mv.to]
                        .device()
                        .transfer_duration(bytes, TransferRoute::SsdToCpu)
                }
                (Some(from), healthy_or_dilated) => {
                    self.dynamics.migration_hops += 1;
                    let raw =
                        self.sys
                            .fabric()
                            .transfer_duration(bytes, NodeId(from), NodeId(mv.to));
                    match healthy_or_dilated {
                        LinkOutcome::Dilated(factor) => {
                            let slowed = dilate_span(raw, factor);
                            let extra = slowed.saturating_sub(raw);
                            self.ledger.link_dilated += 1;
                            self.ledger.degraded_time += extra;
                            self.ledger.note_fault(at);
                            self.ledger.note_recovery(at + slowed);
                            if self.tracer.enabled() {
                                self.emit(
                                    at,
                                    mv.to as u32,
                                    TraceKind::LinkFault {
                                        from: from as u32,
                                        to: mv.to as u32,
                                        partitioned: false,
                                        extra,
                                    },
                                );
                            }
                            slowed
                        }
                        _ => raw,
                    }
                }
            };
            let done = at + duration;
            done_latest = done_latest.max(done);
            self.dynamics.migrations += 1;
            self.dynamics.migration_bytes += bytes;
            self.dynamics.migration_time_total += duration;
            // Replacement traffic competes with serving: the receiver
            // is busier, and chains touching the expert wait for it.
            self.dispatcher.add_busy(mv.to, at, duration);
            let ready = self.available_at.entry(mv.expert).or_insert(done);
            *ready = (*ready).max(done);
            if self.tracer.enabled() {
                self.emit(
                    at,
                    mv.to as u32,
                    TraceKind::MigrationStarted {
                        expert: mv.expert,
                        donor: mv.from.map(|f| f as u32),
                        span: duration,
                    },
                );
                self.emit(
                    done,
                    mv.to as u32,
                    TraceKind::MigrationLanded { expert: mv.expert },
                );
            }
        }
        self.dynamics.plan_versions = new_version;
        done_latest
    }

    /// Whether the drift trigger currently holds: a pure predicate over
    /// the observed mix and the plan's usage basis, independent of the
    /// clock. Shared by [`Runtime::maybe_drift_replan`] and the empty-
    /// tick skip-ahead guard (a pending re-plan must fire at its own
    /// tick boundary, so the loop may not jump past one).
    fn drift_replan_pending(&self) -> bool {
        let ReplacementPolicy::Drift { threshold } = self.options.replacement else {
            return false;
        };
        if self.observed_total < DRIFT_MIN_SAMPLES {
            return false;
        }
        let basis = self.plan.usage_basis();
        let basis_total: f64 = basis.iter().sum();
        if basis_total <= 0.0 {
            return false;
        }
        let total = self.observed_total as f64;
        let distance: f64 = 0.5
            * self
                .observed
                .iter()
                .zip(basis)
                .map(|(&c, &b)| (c as f64 / total - b / basis_total).abs())
                .sum::<f64>();
        distance > threshold
    }

    fn maybe_drift_replan(&mut self, now: SimTime) {
        if !self.drift_replan_pending() {
            return;
        }
        let total = self.observed_total as f64;
        let observed: Vec<f64> = self.observed.iter().map(|&c| c as f64 / total).collect();
        let next = self
            .plan
            .replanned(self.sys.model(), &self.alive, Some(observed));
        let migration = migration_plan(&self.plan, &next, self.sys.model(), &self.alive);
        let _ = self.migrate(&migration, next.version(), now);
        self.plan = next;
    }

    /// Runs every node's engine over its tick buffer, feeds the
    /// telemetry back and appends the tick to the timeline.
    fn flush_tick(&mut self, index: u32, start: SimTime, end: SimTime, stream_name: &str) {
        let mut completed = 0usize;
        let mut dropped = self.tick_routing_dropped;
        let mut slo_met = 0usize;
        self.tick_latencies.clear();
        for node in 0..self.buffers.len() {
            if self.buffers[node].is_empty() {
                continue;
            }
            let mut jobs = std::mem::take(&mut self.buffers[node]);
            // Fabric delays can reorder arrivals; restore the
            // non-decreasing order per node and re-densify ids.
            jobs.sort_by_key(|j| j.arrival);
            for (k, job) in jobs.iter_mut().enumerate() {
                job.id = JobId(k as u32);
            }
            let name = format!("{} @ {}", stream_name, self.sys.node_names()[node]);
            let node_stream = RequestStream::from_jobs(name, jobs);
            let report = self.sys.nodes()[node]
                .serve_configured(&node_stream, &self.configs[node])
                .expect("validated at cluster construction");
            // A slow-node window dilates everything the node's service
            // shows the control loop this tick: its finish time, its
            // busy time and its latency samples. Under feedback the
            // inflated busy/predicted ratio raises the node's service
            // scale and steers traffic away — the recovery path.
            let dilation = self.faults.map_or(1.0, |p| p.node_dilation(node, start));
            let (finish, busy) = if dilation > 1.0 {
                let makespan = dilate_span(report.makespan, dilation);
                let extra = makespan.saturating_sub(report.makespan);
                self.ledger.slow_node_ticks += 1;
                self.ledger.degraded_time += extra;
                self.ledger.note_fault(start);
                self.ledger.note_recovery(SimTime::ZERO + makespan);
                if self.tracer.enabled() {
                    self.emit(start, node as u32, TraceKind::SlowNode { extra });
                }
                (
                    SimTime::ZERO + makespan,
                    dilate_span(report.exec_time_total + report.switch_time_total, dilation),
                )
            } else {
                (
                    SimTime::ZERO + report.makespan,
                    report.exec_time_total + report.switch_time_total,
                )
            };
            self.dispatcher.observe(node, finish, busy);
            self.dispatcher.observe_admission(
                node,
                report.admitted,
                report.dropped,
                finish.saturating_since(start),
                end.saturating_since(start),
            );
            completed += report.completed;
            dropped += report.dropped;
            if dilation > 1.0 {
                for &l in &report.job_latencies {
                    let slowed = dilate_span(l, dilation);
                    if slowed <= self.options.slo {
                        slo_met += 1;
                    }
                    self.tick_latencies.push(slowed);
                }
            } else {
                slo_met += report
                    .job_latencies
                    .iter()
                    .filter(|&&l| l <= self.options.slo)
                    .count();
                self.tick_latencies.extend(report.job_latencies.iter());
            }
            match &mut self.merged[node] {
                Some(merged) => merged.absorb(report),
                None => self.merged[node] = Some(report),
            }
        }
        if self.tick_routed > 0 || completed > 0 || dropped > 0 {
            self.dynamics.ticks.push(TickStat {
                index,
                start,
                end,
                routed: self.tick_routed,
                completed,
                dropped,
                slo_met,
                p95_ms: Summary::of_spans(&self.tick_latencies).map(|s| s.p95),
            });
        }
        self.tick_routed = 0;
        self.tick_routing_dropped = 0;
        // Migration clocks older than this tick can no longer delay
        // anything (arrivals only move forward).
        self.available_at.retain(|_, &mut ready| ready > end);
    }

    fn assemble(&mut self, stream: &RequestStream) -> ClusterReport {
        let reports: Vec<RunReport> = self
            .merged
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                slot.take().unwrap_or_else(|| {
                    // Routed nothing here (possible under residency-
                    // first routing of a tiny stream, or a node dead
                    // from the start): a zero report.
                    let system = &self.sys.nodes()[i];
                    RunReport::empty(
                        system.config().name.clone(),
                        system.device().name(),
                        format!("{} @ {}", stream.name(), self.sys.node_names()[i]),
                    )
                })
            })
            .collect();
        let feedback = match self.options.feedback {
            FeedbackMode::OpenLoop => String::new(),
            FeedbackMode::Corrected => ", feedback".to_string(),
        };
        let system_name = format!(
            "{} ×{} ({}, {}{})",
            self.sys.nodes()[0].config().name,
            self.sys.num_nodes(),
            self.plan.strategy(),
            self.sys.options().route,
            feedback,
        );
        let mut report = ClusterReport::merge(
            system_name,
            stream.name(),
            reports,
            self.dispatcher.cross_node_hops(),
            self.dispatcher.fabric_time_total(),
        );
        // Front-end rejections (unhosted chains and paced sheds) never
        // reached a node: account for them at the fleet level so
        // conservation still holds.
        let front_end = self.dynamics.routing_dropped
            + usize::try_from(self.dynamics.paced_shed).expect("shed count fits usize");
        report.submitted += front_end;
        report.dropped += front_end;
        self.dynamics.estimate_error_ms = self.dispatcher.estimate_error_ms();
        self.dynamics.faults = self.ledger;
        report.dynamics = std::mem::take(&mut self.dynamics);
        report
    }
}

/// `span` stretched by `factor` (≥ 1), rounding to whole nanoseconds.
fn dilate_span(span: SimSpan, factor: f64) -> SimSpan {
    SimSpan::from_nanos((span.nanos() as f64 * factor).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterOptions, PlacementStrategy};
    use coserve_core::presets;
    use coserve_model::devices;
    use coserve_sim::network::LinkProfile;
    use coserve_workload::task::TaskSpec;

    fn fleet(n: usize) -> (ClusterSystem, RequestStream) {
        let task = TaskSpec::a1().scaled(0.08); // 200 requests
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            n,
            &device,
            &presets::coserve(&device),
            &model,
            LinkProfile::ethernet_10g(),
            ClusterOptions::default(),
        )
        .unwrap();
        let stream = task.stream(cluster.model());
        (cluster, stream)
    }

    fn mid(stream: &RequestStream) -> SimTime {
        SimTime::ZERO
            + SimSpan::from_millis_f64(
                stream
                    .last_arrival()
                    .saturating_since(SimTime::ZERO)
                    .as_millis_f64()
                    / 2.0,
            )
    }

    /// Drives `options` through both the calendar-driven control loop
    /// and the historic index-scanning reference loop, asserting the
    /// reports and the recorded fleet traces are bit-identical.
    fn assert_loops_match(
        cluster: &ClusterSystem,
        stream: &RequestStream,
        options: &RuntimeOptions,
    ) -> ClusterReport {
        use coserve_trace::RingTracer;
        let mut calendar_tracer = RingTracer::new();
        let mut runtime = Runtime::new(cluster, options, &mut calendar_tracer);
        let calendar = runtime.run(stream);
        let mut reference_tracer = RingTracer::new();
        let mut runtime = Runtime::new(cluster, options, &mut reference_tracer);
        let reference = runtime.run_reference(stream);
        assert_eq!(
            calendar, reference,
            "calendar loop must match the reference loop"
        );
        assert_eq!(calendar_tracer.drain(), reference_tracer.drain());
        calendar
    }

    #[test]
    fn calendar_loop_matches_reference_across_modes() {
        let (cluster, stream) = fleet(4);
        let at = mid(&stream);
        let back = at + SimSpan::from_millis(40);
        let cases = [
            RuntimeOptions::default(),
            RuntimeOptions::default().tick(SimSpan::from_millis(60)),
            RuntimeOptions::default()
                .tick(SimSpan::from_millis(35))
                .failures(FailureSchedule::new().kill(1, at).revive(1, back))
                .feedback(FeedbackMode::Corrected),
            RuntimeOptions::default()
                .tick(SimSpan::from_millis(50))
                .failures(FailureSchedule::new().kill(0, at))
                .replacement(ReplacementPolicy::Static),
            RuntimeOptions::default()
                .tick(SimSpan::from_millis(45))
                .replacement(ReplacementPolicy::Drift { threshold: 0.05 }),
        ];
        for options in &cases {
            assert_loops_match(&cluster, &stream, options);
        }
    }

    #[test]
    fn failure_at_exact_arrival_instant_fires_first() {
        // The historic merge applied events `at <= arrival` before the
        // arrival; the calendar reproduces that via the failure lane's
        // smaller sequence numbers. Pin the tie explicitly.
        let (cluster, stream) = fleet(4);
        let tie = stream.jobs()[stream.jobs().len() / 2].arrival;
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(40))
            .failures(FailureSchedule::new().kill(2, tie));
        let report = assert_loops_match(&cluster, &stream, &options);
        assert_eq!(report.dynamics.failures[0].failed_at, tie);
    }

    #[test]
    fn empty_tick_skip_ahead_is_exact() {
        // A tiny tick over a stream with a far-future revive forces
        // long empty-tick gaps; the arithmetic skip-ahead must land on
        // identical tick indices and boundaries as the reference loop
        // that grinds through every empty tick.
        let (cluster, stream) = fleet(3);
        let last = stream.last_arrival();
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(1))
            .failures(
                FailureSchedule::new()
                    .kill(1, mid(&stream))
                    .revive(1, last + SimSpan::from_millis(500)),
            );
        let report = assert_loops_match(&cluster, &stream, &options);
        assert_eq!(
            report.dynamics.failures[0].revived_at,
            Some(last + SimSpan::from_millis(500))
        );
    }

    #[test]
    fn one_shot_runtime_matches_plain_serve() {
        let (cluster, stream) = fleet(3);
        let via_runtime = cluster.serve_runtime(&stream, &RuntimeOptions::default());
        let plain = cluster.serve(&stream);
        assert_eq!(via_runtime, plain);
        assert_eq!(plain.dynamics.ticks.len(), 1);
        assert_eq!(plain.dynamics.migrations, 0);
        assert_eq!(plain.dynamics.plan_versions, 0);
    }

    #[test]
    fn ticked_open_loop_routes_identically_to_one_shot() {
        let (cluster, stream) = fleet(3);
        let one_shot = cluster.serve_runtime(&stream, &RuntimeOptions::default());
        let ticked = cluster.serve_runtime(
            &stream,
            &RuntimeOptions::default().tick(SimSpan::from_millis(120)),
        );
        // Open-loop estimates accumulate identically across tick
        // boundaries, so the routing (and the fabric charges) match;
        // only the per-tick engine slicing differs.
        assert_eq!(one_shot.cross_node_hops, ticked.cross_node_hops);
        assert_eq!(one_shot.fabric_time_total, ticked.fabric_time_total);
        assert_eq!(one_shot.submitted, ticked.submitted);
        assert!(ticked.dynamics.ticks.len() > 1);
        assert!(ticked.dynamics.estimate_error_ms.is_some());
    }

    #[test]
    fn kill_rereplicates_and_conserves_jobs() {
        let (cluster, stream) = fleet(4);
        let at = mid(&stream);
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(60))
            .failures(FailureSchedule::new().kill(1, at));
        let report = cluster.serve_runtime(&stream, &options);
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted
        );
        assert_eq!(report.dynamics.failures.len(), 1);
        let failure = report.dynamics.failures[0];
        assert_eq!(failure.node, 1);
        assert_eq!(failure.failed_at, at);
        let recovery = report.recovery_time().expect("re-replication recovers");
        assert!(recovery > SimSpan::ZERO);
        assert!(!report.has_unrecovered_failure());
        assert!(report.dynamics.migrations > 0);
        assert!(report.dynamics.migration_bytes > coserve_sim::memory::Bytes::ZERO);
        assert!(report.dynamics.plan_versions >= 1);
        assert_eq!(
            report.dynamics.routing_dropped, 0,
            "recovered fleet serves all"
        );
    }

    #[test]
    fn static_placement_drops_orphaned_chains_forever() {
        let (cluster, stream) = fleet(4);
        let at = mid(&stream);
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(60))
            .failures(FailureSchedule::new().kill(1, at))
            .replacement(ReplacementPolicy::Static);
        let report = cluster.serve_runtime(&stream, &options);
        assert!(report.has_unrecovered_failure());
        assert_eq!(report.recovery_time(), None);
        assert!(
            report.dynamics.routing_dropped > 0,
            "orphaned shard must reject chains"
        );
        assert_eq!(report.dynamics.migrations, 0);
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted
        );
    }

    #[test]
    fn kill_and_revival_round_trip_is_deterministic() {
        let (cluster, stream) = fleet(4);
        let at = mid(&stream);
        let back = at + SimSpan::from_millis(40);
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(50))
            .failures(FailureSchedule::new().kill(2, at).revive(2, back))
            .feedback(FeedbackMode::Corrected);
        let a = cluster.serve_runtime(&stream, &options);
        let b = cluster.serve_runtime(&stream, &options);
        assert_eq!(a, b);
        let failure = a.dynamics.failures[0];
        assert_eq!(failure.revived_at, Some(back));
        assert!(failure.recovered_at.is_some());
        // The revived node is rebalanced back into service.
        assert!(a.dynamics.plan_versions >= 2);
    }

    #[test]
    fn drift_policy_replans_from_observed_usage() {
        let task = TaskSpec::a1().scaled(0.08);
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            3,
            &device,
            &presets::coserve(&device),
            &model,
            LinkProfile::ethernet_10g(),
            ClusterOptions::default().placement(PlacementStrategy::UsageAware),
        )
        .unwrap();
        // A drifted stream: the same model, but classes drawn from a
        // rotated quantity profile, so cold experts run hot.
        let board = task.board();
        let drifted = board.drifted(board.num_components() / 2);
        let stream = RequestStream::generate(
            "drifted",
            &drifted,
            cluster.model(),
            200,
            SimSpan::from_millis(2),
            coserve_workload::stream::StreamOrder::Iid,
            7,
        );
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(40))
            .replacement(ReplacementPolicy::Drift { threshold: 0.15 });
        let report = cluster.serve_runtime(&stream, &options);
        assert!(
            report.dynamics.plan_versions >= 1,
            "rotated usage must exceed the drift threshold"
        );
        assert!(report.dynamics.migrations > 0);
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted
        );
    }

    #[test]
    fn pacing_is_inert_before_any_telemetry() {
        // Budgets are reactive: they only exist after a node has
        // reported a tick. A one-shot run (single tick) therefore
        // routes bit-identically with pacing on or off — and the
        // figure binaries, which never enable pacing, are untouched
        // either way.
        let (cluster, stream) = fleet(3);
        let plain = cluster.serve_runtime(&stream, &RuntimeOptions::default());
        let paced = cluster.serve_runtime(&stream, &RuntimeOptions::default().pacing(true));
        assert_eq!(plain, paced);
        assert_eq!(paced.dynamics.paced_shed, 0);
    }

    /// The fig22 drift-only cell (shrunk): a drifted Poisson stream
    /// near capacity on a 4-node least-loaded fleet with a bounded
    /// admission queue. Service-scale feedback alone cannot stop the
    /// per-tick bursts that overflow a node's admission queue — the
    /// burst is already sent when the drop telemetry arrives. Pacing
    /// bounds next tick's burst from that telemetry, trading a few
    /// front-end sheds for queue-overflow drops and a better tail.
    #[test]
    fn pacing_recovers_drift_only_feedback_cell() {
        let task = TaskSpec::a1();
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            4,
            &device,
            &presets::coserve(&device),
            &model,
            LinkProfile::ethernet_10g(),
            ClusterOptions::default().route(crate::dispatch::RoutePolicy::LeastLoaded),
        )
        .unwrap();
        let board = task.board();
        let drifted = board.drifted(board.num_components() / 2);
        let stream = RequestStream::generate_open_loop(
            "drifted poisson",
            &drifted,
            cluster.model(),
            900,
            coserve_workload::arrivals::ArrivalProcess::poisson(200.0),
            coserve_workload::stream::StreamOrder::Iid,
            7,
        );
        let horizon = stream.last_arrival().saturating_since(SimTime::ZERO);
        let tick = SimSpan::from_millis_f64((horizon.as_millis_f64() / 12.0).max(1.0));
        let admission = AdmissionControl::with_queue_capacity(16);
        let options = RuntimeOptions::default()
            .tick(tick)
            .feedback(FeedbackMode::Corrected)
            .online(admission, presets::ONLINE_MAX_OVERTAKE);
        let corrected = cluster.serve_runtime(&stream, &options);
        let paced = cluster.serve_runtime(&stream, &options.clone().pacing(true));
        let open =
            cluster.serve_runtime(&stream, &options.clone().feedback(FeedbackMode::OpenLoop));

        // Conservation holds with front-end sheds in the ledger.
        assert_eq!(
            paced.completed + paced.failed + paced.dropped,
            paced.submitted
        );
        assert!(paced.dynamics.paced_shed > 0, "budgets must engage");
        let p95 = |r: &ClusterReport| r.latency_summary().expect("requests completed").p95;
        let p50 = |r: &ClusterReport| r.latency_summary().expect("requests completed").p50;
        // The lost cell, as shipped: scale-only correction trails the
        // open-loop estimates on the drifted tail.
        assert!(
            p95(&corrected) > p95(&open),
            "cell no longer lost without pacing: corrected {:.1} ms vs open-loop {:.1} ms",
            p95(&corrected),
            p95(&open)
        );
        // The recovery: bounding per-tick sends from the admission
        // telemetry takes corrected dispatch past both unpaced modes.
        assert!(
            p95(&paced) < p95(&open),
            "paced corrected p95 {:.1} ms must recover past open-loop {:.1} ms",
            p95(&paced),
            p95(&open)
        );
        assert!(
            p50(&paced) < p50(&corrected),
            "paced corrected p50 {:.1} ms must beat unpaced {:.1} ms",
            p50(&paced),
            p50(&corrected)
        );
    }

    #[test]
    fn traced_runtime_matches_untraced_and_records_fleet_events() {
        use coserve_trace::RingTracer;
        let (cluster, stream) = fleet(4);
        let at = mid(&stream);
        let back = at + SimSpan::from_millis(40);
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(50))
            .failures(FailureSchedule::new().kill(2, at).revive(2, back));
        let untraced = cluster.serve_runtime(&stream, &options);

        let mut tracer = RingTracer::new();
        let traced = cluster.serve_runtime_traced(&stream, &options, &mut tracer);
        assert_eq!(untraced, traced, "tracing must not perturb the run");
        let events = tracer.drain();

        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
        assert_eq!(count("node-killed"), 1);
        assert_eq!(count("node-revived"), 1);
        assert!(count("replanned") >= 2, "kill + revival both re-plan");
        assert_eq!(count("migration-start"), count("migration-land"));
        assert_eq!(count("migration-start") as u64, traced.dynamics.migrations);
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::NodeKilled { .. }) && e.node == 2 && e.at == at));

        // Determinism: a second traced run records identical events.
        let mut tracer2 = RingTracer::new();
        let traced2 = cluster.serve_runtime_traced(&stream, &options, &mut tracer2);
        assert_eq!(traced, traced2);
        assert_eq!(events, tracer2.drain());
    }

    #[test]
    fn traced_static_runtime_records_sheds() {
        use coserve_trace::RingTracer;
        let (cluster, stream) = fleet(4);
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(60))
            .failures(FailureSchedule::new().kill(1, mid(&stream)))
            .replacement(ReplacementPolicy::Static);
        let mut tracer = RingTracer::new();
        let report = cluster.serve_runtime_traced(&stream, &options, &mut tracer);
        let sheds = tracer
            .events()
            .filter(|e| matches!(e.kind, TraceKind::Shed { paced: false, .. }))
            .count();
        assert_eq!(sheds, report.dynamics.routing_dropped);
        assert!(sheds > 0, "orphaned shard must shed chains");
    }

    #[test]
    fn failure_schedule_validates_and_orders() {
        let schedule = FailureSchedule::new()
            .revive(1, SimTime::ZERO + SimSpan::from_millis(90))
            .kill(1, SimTime::ZERO + SimSpan::from_millis(10));
        assert_eq!(schedule.len(), 2);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.max_node(), Some(1));
        assert_eq!(schedule.events()[0].kind, FailureKind::Kill);
        assert_eq!(schedule.events()[1].kind, FailureKind::Revive);
        assert_eq!(ReplacementPolicy::Static.to_string(), "static");
        assert_eq!(ReplacementPolicy::OnFailure.to_string(), "re-replicate");
        assert_eq!(
            ReplacementPolicy::Drift { threshold: 0.2 }.to_string(),
            "drift(0.2)"
        );
    }

    #[test]
    #[should_panic(expected = "names node 7")]
    fn out_of_range_failure_panics() {
        let (cluster, stream) = fleet(2);
        let options =
            RuntimeOptions::default().failures(FailureSchedule::new().kill(7, SimTime::ZERO));
        let _ = cluster.serve_runtime(&stream, &options);
    }

    #[test]
    fn disabled_fault_plan_serves_bit_identically() {
        let (cluster, stream) = fleet(3);
        let options = RuntimeOptions::default().tick(SimSpan::from_millis(120));
        let plain = cluster.serve_runtime(&stream, &options);
        let armed_disabled = cluster.serve_runtime(
            &stream,
            &options
                .clone()
                .faults(coserve_faults::FaultPlan::disabled())
                .hedge(false),
        );
        assert_eq!(plain, armed_disabled);
        assert!(plain.dynamics.faults.is_empty());
    }

    #[test]
    fn slow_node_windows_are_accounted_and_traced() {
        let (cluster, stream) = fleet(3);
        let plan = coserve_faults::FaultPlan::seeded(11).with_slow_nodes(
            vec![0],
            5.0,
            coserve_faults::FaultWindow::ALWAYS,
        );
        let base = RuntimeOptions::default()
            .tick(SimSpan::from_millis(30))
            .faults(plan);
        let mut tracer = coserve_trace::RingTracer::new();
        let report = cluster.serve_runtime_traced(&stream, &base, &mut tracer);
        let faults = report.dynamics.faults;
        assert!(faults.slow_node_ticks > 0, "always-on window must fire");
        assert!(faults.degraded_time > SimSpan::ZERO);
        assert!(faults.recovery_span().is_some());
        let events = tracer.drain();
        let slow_events = events
            .iter()
            .filter(|e| e.kind.name() == "slow-node")
            .count() as u64;
        assert_eq!(slow_events, faults.slow_node_ticks);
        assert!(
            events
                .iter()
                .filter(|e| e.kind.name() == "slow-node")
                .all(|e| e.node == 0),
            "only node 0 is in the slow window"
        );
        // The dilation shows up in the control loop's latency ledger.
        let plain = cluster.serve_runtime(
            &stream,
            &RuntimeOptions::default().tick(SimSpan::from_millis(30)),
        );
        let p95 = |r: &ClusterReport| {
            r.dynamics
                .ticks
                .iter()
                .filter_map(|t| t.p95_ms)
                .fold(0.0f64, f64::max)
        };
        assert!(
            p95(&report) > p95(&plain),
            "5x dilation must raise the worst tick p95"
        );
    }

    mod proptests {
        use super::*;
        use coserve_sim::rng::SimRng;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            /// Random tick spans, failure schedules, feedback modes and
            /// re-placement policies: the calendar-driven control loop
            /// and the index-scanning reference loop must produce
            /// bit-identical cluster reports and fleet traces.
            #[test]
            fn calendar_loop_matches_reference_loop(
                seed in 0u64..1_000,
                tick_ms in 1u64..160,
                failures in 0usize..4,
            ) {
                let nodes = 3 + (seed % 2) as usize;
                let (cluster, stream) = fleet(nodes);
                let horizon = stream
                    .last_arrival()
                    .saturating_since(SimTime::ZERO)
                    .nanos();
                let mut rng = SimRng::seed_from(seed ^ 0x0ca1_e4da);
                let mut schedule = FailureSchedule::new();
                for _ in 0..failures {
                    let node = rng.next_below(nodes as u64) as usize;
                    // Up to 1.5x the stream horizon, so some events
                    // land beyond the last arrival (the drain path).
                    let at = SimTime::ZERO
                        + SimSpan::from_nanos(rng.next_below(horizon + horizon / 2));
                    schedule = match rng.next_below(2) {
                        0 => schedule.kill(node, at),
                        _ => schedule.revive(node, at),
                    };
                }
                let feedback = match rng.next_below(2) {
                    0 => FeedbackMode::OpenLoop,
                    _ => FeedbackMode::Corrected,
                };
                let replacement = match rng.next_below(3) {
                    0 => ReplacementPolicy::Static,
                    1 => ReplacementPolicy::OnFailure,
                    _ => ReplacementPolicy::Drift { threshold: 0.1 },
                };
                let options = RuntimeOptions::default()
                    .tick(SimSpan::from_millis(tick_ms))
                    .failures(schedule)
                    .feedback(feedback)
                    .replacement(replacement);
                assert_loops_match(&cluster, &stream, &options);
            }
        }
    }

    #[test]
    fn partitioned_migration_degrades_to_local_reload() {
        let (cluster, stream) = fleet(3);
        let at = mid(&stream);
        let back = at + SimSpan::from_millis(40);
        // Node 1 dies and later revives. The rebalance onto the revived
        // node ships its share from live donors — but with both donor
        // links cut, every copy degrades to a local checkpoint reload.
        let plan = coserve_faults::FaultPlan::seeded(11).with_link(
            0.0,
            1.0,
            vec![(0, 1), (1, 2)],
            coserve_faults::FaultWindow::ALWAYS,
        );
        let options = RuntimeOptions::default()
            .tick(SimSpan::from_millis(30))
            .failures(FailureSchedule::new().kill(1, at).revive(1, back))
            .faults(plan);
        let report = cluster.serve_runtime(&stream, &options);
        let faults = report.dynamics.faults;
        assert!(
            faults.degraded_local > 0,
            "cut donor links must force local reloads"
        );
        assert!(faults.link_partitioned > 0);
        assert!(faults.recovery_span().is_some());
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted,
            "degradation must not lose jobs"
        );
    }
}
