//! # coserve-cluster
//!
//! Cluster-scale serving for the CoServe reproduction: one CoE model
//! served by a fleet of heterogeneous nodes.
//!
//! The single-device system (`coserve-core`) already solves *which
//! experts stay resident* and *which executor runs a batch*. Scaling
//! out adds three cluster-level decisions, each in its own module:
//!
//! * [`placement`] — which node each expert lives on, planned offline
//!   from the usage CDF and the dependency graph (hot experts
//!   replicated, cold tail sharded with dependency co-location);
//! * [`mod@dispatch`] — which node each request is routed to, weighing
//!   expert residency against per-node queue depth;
//! * the network [`coserve_sim::network::Fabric`] — what a cross-node
//!   hop costs, charged whenever a request's expert chain is not fully
//!   local.
//!
//! [`ClusterSystem`] ties them together: each node runs its own
//! unmodified per-node engine (admission queues included) over the jobs
//! the dispatcher routed to it, and the per-node
//! [`coserve_metrics::report::RunReport`]s merge into one
//! [`coserve_metrics::cluster::ClusterReport`]. Everything stays
//! deterministic bit for bit.
//!
//! The [`runtime`] module turns the one-shot serve into an event-driven
//! **control loop**: tick-driven dispatch with per-node telemetry
//! feedback, mid-run node failures (re-routing + shard re-replication
//! over the fabric) and drift-triggered online re-placement — see
//! [`ClusterSystem::serve_runtime`].
//!
//! ```
//! use coserve_cluster::prelude::*;
//! use coserve_core::presets;
//! use coserve_model::devices;
//! use coserve_sim::network::LinkProfile;
//! use coserve_workload::task::TaskSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task = TaskSpec::a1().scaled(0.02); // 50 requests for a demo
//! let model = task.build_model()?;
//! let device = devices::numa_rtx3080ti();
//! let cluster = ClusterSystem::homogeneous(
//!     2,
//!     &device,
//!     &presets::coserve(&device),
//!     &model,
//!     LinkProfile::ethernet_10g(),
//!     ClusterOptions::default(),
//! )?;
//! let report = cluster.serve(&task.stream(cluster.model()));
//! assert_eq!(report.completed, 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use coserve_core::config::{AdmissionControl, SystemConfig};
use coserve_core::engine::EngineError;
use coserve_core::perf::PerfMatrix;
use coserve_core::profiler::{Profiler, UsageSource};
use coserve_core::system::ServingSystem;
use coserve_metrics::cluster::ClusterReport;
use coserve_model::coe::CoeModel;
use coserve_sim::device::DeviceProfile;
use coserve_sim::memory::Bytes;
use coserve_sim::network::{Fabric, LinkProfile};
use coserve_workload::stream::RequestStream;

pub mod dispatch;
pub mod placement;
pub mod runtime;

use dispatch::RoutePolicy;
use placement::{plan_placement, PlacementPlan, PlacementStrategy};
use runtime::RuntimeOptions;

/// One node of a cluster: a name, the hardware, and the per-node
/// serving configuration (the fleet may be heterogeneous in both).
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display name ("rack0/gpu1").
    pub name: String,
    /// The node's hardware.
    pub device: DeviceProfile,
    /// The node's serving configuration. Its `preload_order` is
    /// overwritten by the placement plan at cluster construction.
    pub config: SystemConfig,
}

impl NodeSpec {
    /// A new node spec.
    #[must_use]
    pub fn new(name: impl Into<String>, device: DeviceProfile, config: SystemConfig) -> Self {
        NodeSpec {
            name: name.into(),
            device,
            config,
        }
    }
}

/// Cluster-level policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterOptions {
    /// How experts are placed across nodes.
    pub placement: PlacementStrategy,
    /// How requests are routed to nodes.
    pub route: RoutePolicy,
    /// Activation payload shipped per cross-node hop.
    pub activation_bytes: Bytes,
    /// Seed for [`PlacementStrategy::Random`].
    pub placement_seed: u64,
}

impl Default for ClusterOptions {
    /// Usage-aware placement, residency-first routing, 8 MiB activation
    /// payloads, seed 7.
    fn default() -> Self {
        ClusterOptions {
            placement: PlacementStrategy::UsageAware,
            route: RoutePolicy::ResidencyFirst,
            activation_bytes: Bytes::mib(8),
            placement_seed: 7,
        }
    }
}

impl ClusterOptions {
    /// Replaces the placement strategy.
    #[must_use]
    pub fn placement(mut self, strategy: PlacementStrategy) -> Self {
        self.placement = strategy;
        self
    }

    /// Replaces the routing policy.
    #[must_use]
    pub fn route(mut self, route: RoutePolicy) -> Self {
        self.route = route;
        self
    }

    /// Replaces the per-hop activation payload.
    #[must_use]
    pub fn activation_bytes(mut self, bytes: Bytes) -> Self {
        self.activation_bytes = bytes;
        self
    }
}

/// Error detected when constructing a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No nodes were supplied.
    Empty,
    /// The fabric covers a different number of nodes than the fleet.
    FabricMismatch {
        /// Nodes in the fabric.
        fabric: usize,
        /// Nodes in the fleet.
        nodes: usize,
    },
    /// A node's configuration failed engine validation.
    Node {
        /// Index of the failing node.
        node: usize,
        /// The underlying engine error.
        source: EngineError,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Empty => write!(f, "cluster needs at least one node"),
            ClusterError::FabricMismatch { fabric, nodes } => {
                write!(f, "fabric covers {fabric} nodes but the fleet has {nodes}")
            }
            ClusterError::Node { node, source } => {
                write!(f, "node {node} is not servable: {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A ready-to-serve cluster: per-node serving systems (each profiled on
/// its own hardware), the placement plan, and the network fabric.
#[derive(Debug, Clone)]
pub struct ClusterSystem {
    names: Vec<String>,
    nodes: Vec<ServingSystem>,
    fabric: Fabric,
    plan: PlacementPlan,
    options: ClusterOptions,
}

impl ClusterSystem {
    /// Builds a cluster from node specs. Each node is profiled offline
    /// on its own device; the placement plan (computed from the first
    /// node's matrix — usage probabilities are device-independent)
    /// overrides each node's preload order so nodes specialize in their
    /// shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] when the fleet is empty, the fabric
    /// size disagrees, or any node's configuration fails engine
    /// validation on its device.
    ///
    /// # Panics
    ///
    /// Panics when a node's device lacks kernels for the model's
    /// architectures — the offline profiler has nothing to measure
    /// (same contract as [`Profiler::profile`]).
    pub fn new(
        specs: Vec<NodeSpec>,
        model: &CoeModel,
        fabric: Fabric,
        options: ClusterOptions,
    ) -> Result<Self, ClusterError> {
        if specs.is_empty() {
            return Err(ClusterError::Empty);
        }
        if fabric.len() != specs.len() {
            return Err(ClusterError::FabricMismatch {
                fabric: fabric.len(),
                nodes: specs.len(),
            });
        }
        let profiler = Profiler::with_defaults();
        // Profile each *distinct* device once — a homogeneous fleet
        // shares one offline pass instead of re-measuring identical
        // hardware per node (profiling is deterministic, so the shared
        // matrix is exactly what per-node passes would produce).
        let mut profiled: Vec<(usize, PerfMatrix)> = Vec::new();
        let matrices: Vec<PerfMatrix> = specs
            .iter()
            .enumerate()
            .map(|(idx, s)| {
                if let Some((_, m)) = profiled
                    .iter()
                    .find(|entry| specs[entry.0].device == s.device)
                {
                    return m.clone();
                }
                let m = profiler.profile(&s.device, model, UsageSource::Declared);
                profiled.push((idx, m.clone()));
                m
            })
            .collect();
        let plan = plan_placement(
            model,
            &matrices[0],
            specs.len(),
            options.placement,
            options.placement_seed,
        );
        let mut names = Vec::with_capacity(specs.len());
        let mut nodes = Vec::with_capacity(specs.len());
        for (i, (spec, perf)) in specs.into_iter().zip(matrices).enumerate() {
            let mut config = spec.config;
            config.preload_order = Some(plan.preload_order(i).to_vec());
            let system = ServingSystem::with_matrix(spec.device, model.clone(), perf, config)
                .map_err(|source| ClusterError::Node { node: i, source })?;
            names.push(spec_name_or_default(&system, spec.name, i));
            nodes.push(system);
        }
        Ok(ClusterSystem {
            names,
            nodes,
            fabric,
            plan,
            options,
        })
    }

    /// A homogeneous fleet: `n` identical nodes on a fully connected
    /// fabric of `link`s.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] exactly as [`ClusterSystem::new`] does.
    pub fn homogeneous(
        n: usize,
        device: &DeviceProfile,
        config: &SystemConfig,
        model: &CoeModel,
        link: LinkProfile,
        options: ClusterOptions,
    ) -> Result<Self, ClusterError> {
        if n == 0 {
            return Err(ClusterError::Empty);
        }
        let specs = (0..n)
            .map(|i| NodeSpec::new(format!("node-{i}"), device.clone(), config.clone()))
            .collect();
        ClusterSystem::new(specs, model, Fabric::fully_connected(n, link), options)
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The per-node serving systems, in node order.
    #[must_use]
    pub fn nodes(&self) -> &[ServingSystem] {
        &self.nodes
    }

    /// The node names, in node order.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// The shared CoE model.
    #[must_use]
    pub fn model(&self) -> &CoeModel {
        self.nodes[0].model()
    }

    /// The network fabric.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The placement plan.
    #[must_use]
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// The cluster options.
    #[must_use]
    pub fn options(&self) -> &ClusterOptions {
        &self.options
    }

    /// Serves `stream` across the fleet: routes every request, charges
    /// fabric hops, runs one engine per node, merges the reports.
    #[must_use]
    pub fn serve(&self, stream: &RequestStream) -> ClusterReport {
        self.serve_inner(stream, None)
    }

    /// Like [`ClusterSystem::serve`], overriding every node's online
    /// knobs (admission bound and grouping starvation bound) — the
    /// open-loop entry point.
    #[must_use]
    pub fn serve_with_online(
        &self,
        stream: &RequestStream,
        admission: AdmissionControl,
        max_overtake: u32,
    ) -> ClusterReport {
        self.serve_inner(stream, Some((admission, max_overtake)))
    }

    fn serve_inner(
        &self,
        stream: &RequestStream,
        online: Option<(AdmissionControl, u32)>,
    ) -> ClusterReport {
        let options = RuntimeOptions {
            online,
            ..RuntimeOptions::default()
        };
        self.serve_runtime(stream, &options)
    }
}

fn spec_name_or_default(system: &ServingSystem, name: String, index: usize) -> String {
    if name.is_empty() {
        format!("{}#{index}", system.device().name())
    } else {
        name
    }
}

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dispatch::{
        dispatch, DispatchOutcome, Dispatcher, FeedbackMode, NodeLoadModel, RouteFaults,
        RoutePolicy, Routing,
    };
    pub use crate::placement::{
        migration_plan, plan_placement, ExpertMove, MigrationPlan, PlacementPlan, PlacementStrategy,
    };
    pub use crate::runtime::{
        FailureEvent, FailureKind, FailureSchedule, ReplacementPolicy, RuntimeOptions,
    };
    pub use crate::{ClusterError, ClusterOptions, ClusterSystem, NodeSpec};
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::presets;
    use coserve_model::devices;
    use coserve_workload::task::TaskSpec;

    fn small_cluster(n: usize, options: ClusterOptions) -> (ClusterSystem, RequestStream) {
        let task = TaskSpec::a1().scaled(0.04); // 100 requests
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let cluster = ClusterSystem::homogeneous(
            n,
            &device,
            &presets::coserve(&device),
            &model,
            LinkProfile::ethernet_10g(),
            options,
        )
        .unwrap();
        let stream = task.stream(cluster.model());
        (cluster, stream)
    }

    #[test]
    fn cluster_serves_and_conserves_jobs() {
        let (cluster, stream) = small_cluster(3, ClusterOptions::default());
        assert_eq!(cluster.num_nodes(), 3);
        assert_eq!(cluster.node_names().len(), 3);
        assert_eq!(cluster.fabric().len(), 3);
        let report = cluster.serve(&stream);
        assert_eq!(report.submitted, 100);
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted
        );
        assert_eq!(
            report.completed, 100,
            "closed-loop run completes everything"
        );
        assert!(report.throughput_ips() > 0.0);
        assert!(report.system.contains("×3"));
        assert!(report.system.contains("usage-aware"));
    }

    #[test]
    fn node_preload_orders_follow_the_plan() {
        let (cluster, _) = small_cluster(2, ClusterOptions::default());
        for (i, node) in cluster.nodes().iter().enumerate() {
            let order = node.config().preload_order.as_ref().unwrap();
            assert_eq!(order.as_slice(), cluster.plan().preload_order(i));
        }
    }

    #[test]
    fn heterogeneous_fleet_builds() {
        let task = TaskSpec::a1().scaled(0.02);
        let model = task.build_model().unwrap();
        let numa = devices::numa_rtx3080ti();
        let uma = devices::uma_apple_m2();
        let specs = vec![
            NodeSpec::new("numa-0", numa.clone(), presets::coserve(&numa)),
            NodeSpec::new("uma-0", uma.clone(), presets::coserve(&uma)),
        ];
        let cluster = ClusterSystem::new(
            specs,
            &model,
            Fabric::fully_connected(2, LinkProfile::ethernet_100g()),
            ClusterOptions::default(),
        )
        .unwrap();
        let report = cluster.serve(&task.stream(cluster.model()));
        assert_eq!(report.completed, 50);
        assert_eq!(report.nodes[0].device, numa.name());
        assert_eq!(report.nodes[1].device, uma.name());
    }

    #[test]
    fn construction_errors_are_reported() {
        let task = TaskSpec::a1().scaled(0.01);
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let config = presets::coserve(&device);
        assert_eq!(
            ClusterSystem::new(
                Vec::new(),
                &model,
                Fabric::fully_connected(1, LinkProfile::ethernet_10g()),
                ClusterOptions::default(),
            )
            .unwrap_err(),
            ClusterError::Empty
        );
        let specs = vec![NodeSpec::new("a", device, config)];
        let err = ClusterSystem::new(
            specs,
            &model,
            Fabric::fully_connected(3, LinkProfile::ethernet_10g()),
            ClusterOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::FabricMismatch { .. }));
        assert!(err.to_string().contains("fabric covers 3"));
        // The per-node validation error names the failing node.
        let node_err = ClusterError::Node {
            node: 2,
            source: EngineError::PerfModelMismatch {
                model_experts: 4,
                perf_experts: 2,
            },
        };
        assert!(node_err.to_string().contains("node 2 is not servable"));
    }

    #[test]
    fn online_override_bounds_every_node() {
        let (cluster, stream) = small_cluster(2, ClusterOptions::default());
        let report =
            cluster.serve_with_online(&stream, AdmissionControl::with_queue_capacity(4096), 16);
        assert_eq!(report.dropped, 0, "huge bound must not drop at this load");
        assert_eq!(report.admitted, report.submitted);
    }

    #[test]
    fn cluster_runs_are_bit_identical() {
        let options = ClusterOptions::default().placement(PlacementStrategy::Random);
        let (a_sys, a_stream) = small_cluster(3, options);
        let (b_sys, b_stream) = small_cluster(3, options);
        assert_eq!(a_sys.serve(&a_stream), b_sys.serve(&b_stream));
    }
}
