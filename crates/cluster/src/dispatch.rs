//! Multi-node request routing.
//!
//! The cluster front-end sees every request before any node does and
//! decides, deterministically, which node serves it. Routing weighs
//! two signals:
//!
//! * **residency** — how many experts of the request's pre-rolled chain
//!   the candidate node holds under the placement plan (local experts
//!   mean no fabric transfers and no cold loads), and
//! * **queue depth** — a work-left estimate per node, maintained from
//!   the [`PerfMatrix`] predictions the paper's scheduler already uses
//!   (§4.2): never the simulator's ground truth.
//!
//! When a request's chain includes experts the routed node does not
//! hold, each such stage pays one **cross-node hop**: an activation
//! transfer over the [`Fabric`] link from the nearest holder, charged
//! by delaying the request's arrival at the node. Hop counts and total
//! fabric time flow into the
//! [`coserve_metrics::cluster::ClusterReport`].

use std::fmt;

use coserve_core::perf::PerfMatrix;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::device::ProcessorKind;
use coserve_sim::memory::Bytes;
use coserve_sim::network::{Fabric, NodeId};
use coserve_sim::time::{SimSpan, SimTime};
use coserve_workload::stream::{Job, RequestStream};

use crate::placement::PlacementPlan;

/// How the cluster front-end picks a node for each request.
///
/// For the first two policies, nodes still tied after both criteria
/// are taken round-robin (rotated by the dispatch sequence number), so
/// a fully tied fleet spreads load instead of piling onto node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Maximize expert residency for the request's chain; break ties by
    /// the smaller work-left estimate.
    ResidencyFirst,
    /// Minimize the work-left estimate; break ties by higher residency.
    LeastLoaded,
    /// Ignore both signals and rotate (the locality-blind baseline).
    RoundRobin,
}

impl RoutePolicy {
    /// The three policies in ablation order.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::ResidencyFirst,
        RoutePolicy::LeastLoaded,
        RoutePolicy::RoundRobin,
    ];
}

impl fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutePolicy::ResidencyFirst => write!(f, "residency-first"),
            RoutePolicy::LeastLoaded => write!(f, "least-loaded"),
            RoutePolicy::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// What the dispatcher needs to know about one node to estimate load.
#[derive(Debug, Clone, Copy)]
pub struct NodeLoadModel<'a> {
    /// The node's offline measurements (prediction source, §4.2).
    pub perf: &'a PerfMatrix,
    /// Total executors on the node (work drains this much faster).
    pub executors: usize,
    /// Whether the node has GPU executors (predictions use the GPU
    /// entry when available, the CPU entry otherwise).
    pub has_gpu: bool,
}

/// The routing decision for every job of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Jobs per node, in dispatch order, with arrivals already shifted
    /// by their fabric delays. Ids are *not* yet node-dense.
    pub per_node: Vec<Vec<Job>>,
    /// Stages whose expert lived off the routed node.
    pub cross_node_hops: u64,
    /// Total fabric time charged across all hops.
    pub fabric_time_total: SimSpan,
}

/// Routes every job of `stream` to a node.
///
/// Fully deterministic: a pure function of its inputs, so two identical
/// dispatches produce identical per-node schedules.
///
/// # Panics
///
/// Panics when the plan, fabric and `nodes` disagree on the node count,
/// or a perf matrix lacks an entry the prediction needs.
#[must_use]
pub fn dispatch(
    stream: &RequestStream,
    model: &CoeModel,
    plan: &PlacementPlan,
    fabric: &Fabric,
    nodes: &[NodeLoadModel<'_>],
    route: RoutePolicy,
    activation_bytes: Bytes,
) -> DispatchOutcome {
    let n = nodes.len();
    assert!(n > 0, "dispatch needs at least one node");
    assert_eq!(plan.num_nodes(), n, "plan/node count mismatch");
    assert_eq!(fabric.len(), n, "fabric/node count mismatch");

    let mut per_node: Vec<Vec<Job>> = vec![Vec::new(); n];
    // Work-left estimate: when each node's backlog is predicted to
    // drain, from PerfMatrix predictions only.
    let mut busy_until = vec![SimTime::ZERO; n];
    let mut cross_node_hops = 0u64;
    let mut fabric_time_total = SimSpan::ZERO;
    // Hoisted out of the routing loop: the holders of every expert,
    // indexed by expert id (the per-job loop would otherwise rescan
    // every node's placement set per off-node stage).
    let holders_of: Vec<Vec<usize>> = (0..model.num_experts() as u32)
        .map(|e| plan.holders(ExpertId(e)))
        .collect();

    for (seq, job) in stream.jobs().iter().enumerate() {
        let residency: Vec<usize> = (0..n)
            .map(|node| {
                job.stages
                    .iter()
                    .filter(|&&e| plan.is_placed(node, e))
                    .count()
            })
            .collect();
        // Candidates are scanned in an order rotated by the dispatch
        // sequence number, so fully tied nodes (hot-only chains on
        // replicated placement, idle fleets) round-robin instead of
        // piling onto node 0.
        let start = seq % n;
        let rotated = (0..n).map(|k| (start + k) % n);
        let target = match route {
            RoutePolicy::RoundRobin => start,
            RoutePolicy::ResidencyFirst => rotated
                .min_by_key(|&node| {
                    (
                        std::cmp::Reverse(residency[node]),
                        busy_until[node].saturating_since(job.arrival),
                    )
                })
                .expect("at least one node"),
            RoutePolicy::LeastLoaded => rotated
                .min_by_key(|&node| {
                    (
                        busy_until[node].saturating_since(job.arrival),
                        std::cmp::Reverse(residency[node]),
                    )
                })
                .expect("at least one node"),
        };

        // Fabric charge: every chain stage whose expert lives elsewhere
        // ships its activations from the nearest holder.
        let mut delay = SimSpan::ZERO;
        for &expert in &job.stages {
            if plan.is_placed(target, expert) {
                continue;
            }
            let nearest = holders_of[expert.index()]
                .iter()
                .map(|&h| fabric.transfer_duration(activation_bytes, NodeId(h), NodeId(target)))
                .min();
            if let Some(hop) = nearest {
                cross_node_hops += 1;
                fabric_time_total += hop;
                delay += hop;
            }
        }

        let arrival = job.arrival + delay;
        let service = predicted_service(model, &nodes[target], &job.stages);
        busy_until[target] = busy_until[target].max(arrival) + service;
        per_node[target].push(Job {
            id: job.id, // re-densified by the caller after sorting
            class: job.class,
            arrival,
            stages: job.stages.clone(),
        });
    }

    DispatchOutcome {
        per_node,
        cross_node_hops,
        fabric_time_total,
    }
}

/// Predicted service time of one request chain on a node: the measured
/// `K + B` per stage, divided by the executors draining in parallel.
fn predicted_service(model: &CoeModel, node: &NodeLoadModel<'_>, stages: &[ExpertId]) -> SimSpan {
    let proc = if node.has_gpu {
        ProcessorKind::Gpu
    } else {
        ProcessorKind::Cpu
    };
    let total: SimSpan = stages
        .iter()
        .map(|&e| {
            let arch = model.expert(e).arch();
            node.perf.expect_entry(arch, proc).predicted_latency(1)
        })
        .sum();
    SimSpan::from_millis_f64(total.as_millis_f64() / node.executors.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{plan_placement, PlacementStrategy};
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_sim::network::LinkProfile;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;

    fn setup(nodes: usize) -> (CoeModel, PerfMatrix, RequestStream, Fabric) {
        let board = BoardSpec::synthetic("disp", 30, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = RequestStream::generate(
            "disp",
            &board,
            &model,
            300,
            SimSpan::from_millis(4),
            StreamOrder::Iid,
            11,
        );
        let fabric = Fabric::fully_connected(nodes, LinkProfile::ethernet_10g());
        (model, perf, stream, fabric)
    }

    fn load_models(perf: &PerfMatrix, n: usize) -> Vec<NodeLoadModel<'_>> {
        vec![
            NodeLoadModel {
                perf,
                executors: 4,
                has_gpu: true,
            };
            n
        ]
    }

    #[test]
    fn every_job_is_routed_exactly_once() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        for route in RoutePolicy::ALL {
            let out = dispatch(
                &stream,
                &model,
                &plan,
                &fabric,
                &load_models(&perf, 4),
                route,
                Bytes::mib(8),
            );
            let total: usize = out.per_node.iter().map(Vec::len).sum();
            assert_eq!(total, stream.len(), "{route} lost or duplicated jobs");
        }
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 4),
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        for node in &out.per_node {
            assert_eq!(node.len(), stream.len() / 4);
        }
    }

    #[test]
    fn residency_first_avoids_hops_round_robin_pays_them() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let nodes = load_models(&perf, 4);
        let rf = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        let rr = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        assert!(
            rf.cross_node_hops < rr.cross_node_hops,
            "residency-first {} vs round-robin {}",
            rf.cross_node_hops,
            rr.cross_node_hops
        );
        assert!(rr.cross_node_hops > 0, "sharded tail must cause hops");
        assert!(rr.fabric_time_total > SimSpan::ZERO);
    }

    #[test]
    fn replicated_placement_never_crosses_nodes() {
        let (model, perf, stream, fabric) = setup(3);
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::Replicated, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 3),
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
        );
        assert_eq!(out.cross_node_hops, 0);
        assert_eq!(out.fabric_time_total, SimSpan::ZERO);
        // Arrivals are then untouched.
        for (node, jobs) in out.per_node.iter().enumerate() {
            for j in jobs {
                assert_eq!(
                    j.arrival,
                    stream.jobs()[j.id.index()].arrival,
                    "node {node}"
                );
            }
        }
    }

    #[test]
    fn fabric_delay_shifts_arrivals_forward() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Sharded, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 4),
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        assert!(out.cross_node_hops > 0);
        let mut delayed = 0usize;
        for jobs in &out.per_node {
            for j in jobs {
                let original = stream.jobs()[j.id.index()].arrival;
                assert!(j.arrival >= original, "fabric can only delay");
                if j.arrival > original {
                    delayed += 1;
                }
            }
        }
        assert!(delayed > 0, "sharded + round-robin must delay some jobs");
    }

    #[test]
    fn least_loaded_balances_work_left() {
        let (model, perf, stream, fabric) = setup(2);
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Replicated, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 2),
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
        );
        let (a, b) = (out.per_node[0].len(), out.per_node[1].len());
        assert!(
            a.abs_diff(b) <= stream.len() / 10,
            "least-loaded badly skewed: {a} vs {b}"
        );
    }

    #[test]
    fn dispatch_is_deterministic() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 3);
        let nodes = load_models(&perf, 4);
        let a = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        let b = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn route_policy_displays() {
        assert_eq!(RoutePolicy::ResidencyFirst.to_string(), "residency-first");
        assert_eq!(RoutePolicy::LeastLoaded.to_string(), "least-loaded");
        assert_eq!(RoutePolicy::RoundRobin.to_string(), "round-robin");
    }
}
