//! Multi-node request routing.
//!
//! The cluster front-end sees every request before any node does and
//! decides, deterministically, which node serves it. Routing weighs
//! two signals:
//!
//! * **residency** — how many experts of the request's pre-rolled chain
//!   the candidate node holds under the placement plan (local experts
//!   mean no fabric transfers and no cold loads), and
//! * **queue depth** — a work-left estimate per node, maintained from
//!   the [`PerfMatrix`] predictions the paper's scheduler already uses
//!   (§4.2): never the simulator's ground truth.
//!
//! The estimate is *open-loop* by default, exactly as the paper's
//! front-end is. A [`Dispatcher`] running under the cluster runtime can
//! instead close the loop ([`FeedbackMode::Corrected`]): at every
//! control tick the nodes report what they actually did (finish time,
//! busy time — the per-node telemetry the engine's `RunReport`
//! carries), and the dispatcher maintains a per-node service-time
//! correction factor (EWMA of observed over predicted busy time) so
//! systematic, node-asymmetric prediction error (unmodelled expert
//! switches on a migration receiver, a slower device than profiled)
//! stops accumulating.
//!
//! When a request's chain includes experts the routed node does not
//! hold, each such stage pays one **cross-node hop**: an activation
//! transfer over the [`Fabric`] link from the nearest live holder,
//! charged by delaying the request's arrival at the node. Hop counts
//! and total fabric time flow into the
//! [`coserve_metrics::cluster::ClusterReport`].

use std::fmt;

use coserve_core::perf::PerfMatrix;
use coserve_faults::{FaultPlan, LinkOutcome};
use coserve_metrics::faults::FaultLedger;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::device::ProcessorKind;
use coserve_sim::memory::Bytes;
use coserve_sim::network::{Fabric, NodeId};
use coserve_sim::time::{SimSpan, SimTime};
use coserve_workload::stream::{Job, RequestStream};

use crate::placement::PlacementPlan;

/// How the cluster front-end picks a node for each request.
///
/// For the first two policies, nodes still tied after both criteria
/// are taken round-robin (rotated by the dispatch sequence number), so
/// a fully tied fleet spreads load instead of piling onto node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Maximize expert residency for the request's chain; break ties by
    /// the smaller work-left estimate.
    ResidencyFirst,
    /// Minimize the work-left estimate; break ties by higher residency.
    LeastLoaded,
    /// Ignore both signals and rotate (the locality-blind baseline).
    RoundRobin,
}

impl RoutePolicy {
    /// The three policies in ablation order.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::ResidencyFirst,
        RoutePolicy::LeastLoaded,
        RoutePolicy::RoundRobin,
    ];
}

impl fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutePolicy::ResidencyFirst => write!(f, "residency-first"),
            RoutePolicy::LeastLoaded => write!(f, "least-loaded"),
            RoutePolicy::RoundRobin => write!(f, "round-robin"),
        }
    }
}

/// Whether the dispatcher's work-left estimates stay open-loop or are
/// corrected from per-node telemetry at every control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackMode {
    /// Estimates come from offline predictions only (the paper's §4.2
    /// front-end): error accumulates over the run.
    OpenLoop,
    /// Predicted service is scaled per node by an EWMA of the
    /// observed/predicted busy-time ratio reported at each control
    /// tick, steering traffic away from nodes that are systematically
    /// slower than their offline predictions claim.
    Corrected,
}

impl fmt::Display for FeedbackMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackMode::OpenLoop => write!(f, "open-loop"),
            FeedbackMode::Corrected => write!(f, "feedback"),
        }
    }
}

/// What the dispatcher needs to know about one node to estimate load.
#[derive(Debug, Clone, Copy)]
pub struct NodeLoadModel<'a> {
    /// The node's offline measurements (prediction source, §4.2).
    pub perf: &'a PerfMatrix,
    /// Total executors on the node (work drains this much faster).
    pub executors: usize,
    /// Whether the node has GPU executors (predictions use the GPU
    /// entry when available, the CPU entry otherwise).
    pub has_gpu: bool,
}

/// The routing decision for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routing {
    /// The job goes to `node`, with its arrival already shifted by the
    /// fabric delays its off-node chain stages paid.
    Routed {
        /// The chosen node.
        node: usize,
        /// The job as the node will see it.
        job: Job,
    },
    /// Some chain stage's expert has no live holder: the front-end
    /// cannot serve the request (only possible after node failures
    /// under a static placement).
    Unhosted {
        /// The first unhosted expert in the chain.
        expert: ExpertId,
    },
    /// Every live node has exhausted its per-tick pacing budget: the
    /// front-end sheds the job instead of routing it into an admission
    /// queue that is already observed to be overflowing (only possible
    /// with [`Dispatcher::with_pacing`] enabled).
    Paced,
}

/// The routing decision for every job of a stream (the one-shot
/// [`dispatch`] API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Jobs per node, in dispatch order, with arrivals already shifted
    /// by their fabric delays. Ids are *not* yet node-dense.
    pub per_node: Vec<Vec<Job>>,
    /// Stages whose expert lived off the routed node.
    pub cross_node_hops: u64,
    /// Total fabric time charged across all hops.
    pub fabric_time_total: SimSpan,
}

/// The stateful cluster front-end: routes jobs one at a time against a
/// (possibly re-versioned) placement plan and a live-node mask,
/// maintaining work-left estimates across calls and — under
/// [`FeedbackMode::Corrected`] — folding per-node telemetry back into
/// them at every control tick.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    route: RoutePolicy,
    activation_bytes: Bytes,
    feedback: FeedbackMode,
    /// When strict, a chain stage whose expert has no live holder makes
    /// the job [`Routing::Unhosted`] (the runtime's failure semantics);
    /// when lax, the stage simply pays no hop (the legacy one-shot
    /// behaviour, where plans always cover every expert).
    strict_hosting: bool,
    seq: usize,
    busy_until: Vec<SimTime>,
    /// Per-node EWMA of observed/predicted busy time (1.0 = predictions
    /// trusted verbatim); only updated under `Corrected`.
    service_scale: Vec<f64>,
    /// Predicted service routed to each node since its last
    /// observation — the denominator of the correction ratio.
    predicted_since_observe: Vec<SimSpan>,
    cross_node_hops: u64,
    fabric_time_total: SimSpan,
    err_samples: u64,
    err_sum_ms: f64,
    residency: Vec<usize>,
    /// Queue-depth-aware pacing (off by default): when a node reports
    /// admission drops at a control tick, the dispatcher caps how many
    /// jobs it sends that node next tick to just above what the node
    /// actually absorbed, growing the cap back multiplicatively over
    /// clean ticks (AIMD in spirit). Service-scale feedback alone
    /// cannot fix a drifted node whose admission queue overflows —
    /// scaling service time steers *later* jobs away but the burst
    /// already sent is dropped at the node; the budget bounds the
    /// burst itself.
    pacing: bool,
    tick_sent: Vec<u64>,
    tick_budget: Vec<Option<u64>>,
}

impl Dispatcher {
    /// A dispatcher over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    #[must_use]
    pub fn new(
        nodes: usize,
        route: RoutePolicy,
        activation_bytes: Bytes,
        feedback: FeedbackMode,
        strict_hosting: bool,
    ) -> Self {
        assert!(nodes > 0, "dispatch needs at least one node");
        Dispatcher {
            route,
            activation_bytes,
            feedback,
            strict_hosting,
            seq: 0,
            busy_until: vec![SimTime::ZERO; nodes],
            service_scale: vec![1.0; nodes],
            predicted_since_observe: vec![SimSpan::ZERO; nodes],
            cross_node_hops: 0,
            fabric_time_total: SimSpan::ZERO,
            err_samples: 0,
            err_sum_ms: 0.0,
            residency: vec![0; nodes],
            pacing: false,
            tick_sent: vec![0; nodes],
            tick_budget: vec![None; nodes],
        }
    }

    /// Enables (or disables) queue-depth-aware pacing: per-node,
    /// per-tick send budgets derived from the admitted/dropped
    /// telemetry fed through [`Dispatcher::observe_admission`]. With
    /// pacing off (the default) routing is bit-identical to the
    /// un-paced dispatcher.
    #[must_use]
    pub fn with_pacing(mut self, pacing: bool) -> Self {
        self.pacing = pacing;
        self
    }

    /// Opens a new control tick: resets the per-node sent counters the
    /// pacing budgets are charged against.
    pub fn begin_tick(&mut self) {
        self.tick_sent.fill(0);
    }

    /// Feeds one node's admission telemetry back: `admitted`/`dropped`
    /// are the node's tick counters, `drain` how long the node took to
    /// clear what it admitted, `tick` the control-tick length. Two
    /// congestion signals set next tick's send budget:
    ///
    /// * **drops** — the admission queue overflowed; clamp to just
    ///   above what the node absorbed;
    /// * **overrun** — the node admitted everything but took well over
    ///   a tick to drain it (the queue grows silently rather than
    ///   overflowing); clamp to the per-tick count it actually
    ///   sustained, `admitted · tick / drain`.
    ///
    /// On a clean tick an existing budget grows by half (and is lifted
    /// entirely once it stops binding). A no-op when pacing is off.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn observe_admission(
        &mut self,
        node: usize,
        admitted: usize,
        dropped: usize,
        drain: SimSpan,
        tick: SimSpan,
    ) {
        if !self.pacing {
            let _ = self.tick_budget[node]; // still bounds-check
            return;
        }
        let admitted = admitted as u64;
        // Sustained per-tick drain rate, only meaningful when the node
        // overran its tick by a margin (a job admitted near the tick
        // edge always finishes a little past it).
        let overrun = admitted > 0
            && tick > SimSpan::ZERO
            && drain.as_millis_f64() > 1.25 * tick.as_millis_f64();
        let sustained = overrun.then(|| {
            let rate = tick.as_millis_f64() / drain.as_millis_f64();
            ((admitted as f64 * rate).floor() as u64).max(1)
        });
        if dropped > 0 {
            let cap = (admitted + admitted / 4 + 1).max(1);
            self.tick_budget[node] = Some(sustained.map_or(cap, |s| s.min(cap)));
        } else if let Some(s) = sustained {
            self.tick_budget[node] = Some(self.tick_budget[node].map_or(s, |b| b.min(s)));
        } else if let Some(b) = self.tick_budget[node] {
            // Multiplicative recovery; once the budget exceeds what the
            // node was actually sent it no longer binds, so lift it.
            let grown = b + (b / 2).max(1);
            self.tick_budget[node] = (grown <= 2 * self.tick_sent[node].max(1)).then_some(grown);
        }
    }

    /// Number of nodes the dispatcher routes over.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.busy_until.len()
    }

    /// Stages routed off-node so far.
    #[must_use]
    pub fn cross_node_hops(&self) -> u64 {
        self.cross_node_hops
    }

    /// Total fabric time charged so far.
    #[must_use]
    pub fn fabric_time_total(&self) -> SimSpan {
        self.fabric_time_total
    }

    /// Mean absolute error between the predicted and observed node
    /// finish times across all observations, in milliseconds (`None`
    /// before the first observation) — the open-loop-vs-feedback
    /// estimate-quality metric the cluster report carries.
    #[must_use]
    pub fn estimate_error_ms(&self) -> Option<f64> {
        (self.err_samples > 0).then(|| self.err_sum_ms / self.err_samples as f64)
    }

    /// Routes one job against the current plan and live mask: picks the
    /// target by the routing policy over live nodes, charges one fabric
    /// hop per off-node chain stage (from the nearest live holder), and
    /// advances the target's work-left estimate by the predicted
    /// (feedback-scaled) service time.
    ///
    /// # Panics
    ///
    /// Panics when the plan/mask sizes disagree with the dispatcher, no
    /// node is live, or a perf matrix lacks an entry the prediction
    /// needs.
    pub fn route_job(
        &mut self,
        job: &Job,
        model: &CoeModel,
        plan: &PlacementPlan,
        fabric: &Fabric,
        nodes: &[NodeLoadModel<'_>],
        alive: &[bool],
    ) -> Routing {
        self.route_job_with_faults(job, model, plan, fabric, nodes, alive, None)
    }

    /// [`Dispatcher::route_job`] with a deterministic fault plan applied
    /// to the fabric: dilated links stretch the charged hops, and when a
    /// partition cuts the chosen target off from every live holder of a
    /// stage, recovery either hedges the job to the best reachable
    /// candidate ([`RouteFaults::hedge`]) or degrades that stage to the
    /// target's local checkpoint. With `faults` `None` this is exactly
    /// `route_job` — the plan is never consulted and no float math runs.
    ///
    /// # Panics
    ///
    /// As [`Dispatcher::route_job`].
    #[allow(clippy::too_many_arguments)] // route_job + one fault context
    pub fn route_job_with_faults(
        &mut self,
        job: &Job,
        model: &CoeModel,
        plan: &PlacementPlan,
        fabric: &Fabric,
        nodes: &[NodeLoadModel<'_>],
        alive: &[bool],
        mut faults: Option<RouteFaults<'_>>,
    ) -> Routing {
        let n = self.num_nodes();
        assert_eq!(plan.num_nodes(), n, "plan/node count mismatch");
        assert_eq!(fabric.len(), n, "fabric/node count mismatch");
        assert_eq!(nodes.len(), n, "load model/node count mismatch");
        assert_eq!(alive.len(), n, "alive mask/node count mismatch");
        assert!(alive.iter().any(|&a| a), "routing needs a live node");
        let seq = self.seq;
        self.seq += 1;

        if self.strict_hosting {
            for &expert in &job.stages {
                if !plan.is_hosted(expert, alive) {
                    return Routing::Unhosted { expert };
                }
            }
        }

        for (node, &live) in alive.iter().enumerate() {
            self.residency[node] = if live {
                job.stages
                    .iter()
                    .filter(|&&e| plan.is_placed(node, e))
                    .count()
            } else {
                0
            };
        }
        // Candidates are scanned in an order rotated by the dispatch
        // sequence number, so fully tied nodes (hot-only chains on
        // replicated placement, idle fleets) round-robin instead of
        // piling onto node 0. Under pacing, nodes whose per-tick send
        // budget is spent drop out of the scan; when every live node is
        // over budget the job is shed at the front-end rather than fed
        // into an admission queue known to be overflowing.
        let paced_ok = |node: usize| {
            !self.pacing
                || self.tick_budget[node].is_none_or(|budget| self.tick_sent[node] < budget)
        };
        if self.pacing && !(0..n).any(|node| alive[node] && paced_ok(node)) {
            return Routing::Paced;
        }
        let start = seq % n;
        let mut target = select_target(
            self.route,
            (0..n)
                .map(|k| (start + k) % n)
                .filter(|&node| alive[node] && paced_ok(node)),
            &self.residency,
            &self.busy_until,
            job.arrival,
        )
        .expect("at least one live node");

        // Partition recovery: when the picked target is cut off from
        // every live holder of some chain stage, hedge the job to the
        // best candidate (same policy, same scan order) that can reach
        // all of its stages. A fleet-wide partition leaves no such
        // candidate; the job stays put and degrades per stage below.
        if let Some(f) = faults.as_mut() {
            let fault_plan = f.plan;
            let unreachable_stages = |t: usize| -> usize {
                job.stages
                    .iter()
                    .filter(|&&e| {
                        if plan.is_placed(t, e) {
                            return false;
                        }
                        let mut live = plan.holders(e).iter().filter(|&&h| alive[h]).peekable();
                        live.peek().is_some()
                            && live.all(|&h| fault_plan.partitioned(h, t, job.arrival))
                    })
                    .count()
            };
            if unreachable_stages(target) > 0 {
                f.ledger.note_fault(job.arrival);
                if f.hedge {
                    let alt = select_target(
                        self.route,
                        (0..n).map(|k| (start + k) % n).filter(|&node| {
                            alive[node] && paced_ok(node) && unreachable_stages(node) == 0
                        }),
                        &self.residency,
                        &self.busy_until,
                        job.arrival,
                    );
                    if let Some(alt) = alt {
                        f.ledger.hedged_reroutes += 1;
                        f.ledger.note_recovery(job.arrival);
                        target = alt;
                    }
                }
            }
        }
        self.tick_sent[target] += 1;

        // Fabric charge: every chain stage whose expert lives elsewhere
        // ships its activations from the nearest live holder, over the
        // link's (possibly degraded) current condition.
        let mut delay = SimSpan::ZERO;
        for &expert in &job.stages {
            if plan.is_placed(target, expert) {
                continue;
            }
            let mut nearest: Option<(SimSpan, SimSpan)> = None; // (hop, fault extra)
            let mut live_holders = 0u64;
            let mut cut_links = 0u64;
            for &h in plan.holders(expert) {
                if !alive[h] {
                    continue;
                }
                live_holders += 1;
                let raw =
                    fabric.transfer_duration(self.activation_bytes, NodeId(h), NodeId(target));
                let (hop, extra) =
                    match faults.as_ref().map(|f| f.plan.link(h, target, job.arrival)) {
                        None | Some(LinkOutcome::Healthy) => (raw, SimSpan::ZERO),
                        Some(LinkOutcome::Dilated(factor)) => {
                            let hop =
                                SimSpan::from_nanos((raw.nanos() as f64 * factor).round() as u64);
                            (hop, hop.saturating_sub(raw))
                        }
                        Some(LinkOutcome::Partitioned) => {
                            cut_links += 1;
                            continue;
                        }
                    };
                if nearest.is_none_or(|(best, _)| hop < best) {
                    nearest = Some((hop, extra));
                }
            }
            match nearest {
                Some((hop, extra)) => {
                    self.cross_node_hops += 1;
                    self.fabric_time_total += hop;
                    delay += hop;
                    if !extra.is_zero() {
                        if let Some(f) = faults.as_mut() {
                            f.ledger.link_dilated += 1;
                            f.ledger.degraded_time += extra;
                            f.ledger.note_fault(job.arrival);
                            f.ledger.note_recovery(job.arrival + delay);
                        }
                    }
                }
                None if live_holders > 0 => {
                    // Every live holder is partitioned away from the
                    // target: graceful degradation — the stage is served
                    // from the target's local SSD checkpoint, so no
                    // fabric hop is charged; the cost is counted on the
                    // ledger and lands in node service time.
                    if let Some(f) = faults.as_mut() {
                        f.ledger.link_partitioned += cut_links;
                        f.ledger.degraded_local += 1;
                        f.ledger.note_fault(job.arrival);
                        f.ledger.note_recovery(job.arrival);
                    }
                }
                None => {}
            }
        }

        let arrival = job.arrival + delay;
        let raw = predicted_service(model, &nodes[target], &job.stages);
        // The correction ratio compares observation against the *raw*
        // prediction — dividing by the already-scaled value would make
        // the EWMA converge to the square root of the true slowdown.
        self.predicted_since_observe[target] += raw;
        let service = if self.feedback == FeedbackMode::Corrected {
            SimSpan::from_millis_f64(raw.as_millis_f64() * self.service_scale[target])
        } else {
            raw
        };
        self.busy_until[target] = self.busy_until[target].max(arrival) + service;
        Routing::Routed {
            node: target,
            job: Job {
                id: job.id, // re-densified by the caller after sorting
                class: job.class,
                arrival,
                stages: job.stages.clone(),
            },
        }
    }

    /// Feeds one node's tick telemetry back: `finish` is when the node
    /// actually drained the work routed to it (its report's makespan
    /// against the shared time origin), `busy` the executor time it
    /// actually spent. Always scores the estimate error; under
    /// [`FeedbackMode::Corrected`] also updates the node's
    /// service-scale EWMA from the observed/predicted busy-time ratio
    /// (the work-left estimate itself is *not* snapped to the
    /// observation — see the inline note).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn observe(&mut self, node: usize, finish: SimTime, busy: SimSpan) {
        let predicted = self.predicted_since_observe[node];
        if predicted > SimSpan::ZERO {
            let err = self.busy_until[node]
                .saturating_since(finish)
                .max(finish.saturating_since(self.busy_until[node]));
            self.err_sum_ms += err.as_millis_f64();
            self.err_samples += 1;
            if self.feedback == FeedbackMode::Corrected {
                let predicted_ms = predicted.as_millis_f64();
                if predicted_ms > 0.0 {
                    // Scale-only correction: snapping `busy_until` to the
                    // observation goes stale for nodes idle the next tick
                    // and makes least-loaded routing herd; correcting the
                    // per-node service magnitude diverts traffic from
                    // genuinely slower nodes without that oscillation.
                    let ratio = (busy.as_millis_f64() / predicted_ms).clamp(0.5, 4.0);
                    self.service_scale[node] = 0.5 * self.service_scale[node] + 0.5 * ratio;
                }
            }
        }
        self.predicted_since_observe[node] = SimSpan::ZERO;
    }

    /// Forgets everything learned about `node`: the work it was
    /// predicted to do died with it (re-routed jobs are re-charged to
    /// their new targets), and a node revived later starts with fresh
    /// hardware, an empty queue and no service history. Without this, a
    /// killed node keeps phantom predicted work that biases its first
    /// post-revival observation.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn forget_node(&mut self, node: usize) {
        self.busy_until[node] = SimTime::ZERO;
        self.predicted_since_observe[node] = SimSpan::ZERO;
        self.service_scale[node] = 1.0;
        self.tick_sent[node] = 0;
        self.tick_budget[node] = None;
    }

    /// Charges out-of-band work (an expert migration landing on `node`)
    /// against the node's work-left estimate, so re-placement traffic
    /// steers subsequent routing away from busy receivers.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn add_busy(&mut self, node: usize, at: SimTime, span: SimSpan) {
        self.busy_until[node] = self.busy_until[node].max(at) + span;
    }
}

/// Fault context for one routing pass: the armed plan plus the ledger
/// charged for what injection and recovery do to this dispatch.
#[derive(Debug)]
pub struct RouteFaults<'a> {
    /// The armed fault plan; link outcomes are sampled at each job's
    /// arrival time, so partitions and dilation windows open and close
    /// as simulated time advances.
    pub plan: &'a FaultPlan,
    /// Accounting for dilated hops, cut links and recovery actions.
    pub ledger: &'a mut FaultLedger,
    /// Whether partition recovery hedges to a reachable candidate
    /// instead of degrading the stage to a local checkpoint read.
    pub hedge: bool,
}

/// Applies `route`'s tie-breaking rule over `scan`'s candidate order.
fn select_target(
    route: RoutePolicy,
    mut scan: impl Iterator<Item = usize>,
    residency: &[usize],
    busy_until: &[SimTime],
    arrival: SimTime,
) -> Option<usize> {
    match route {
        RoutePolicy::RoundRobin => scan.next(),
        RoutePolicy::ResidencyFirst => scan.min_by_key(|&node| {
            (
                std::cmp::Reverse(residency[node]),
                busy_until[node].saturating_since(arrival),
            )
        }),
        RoutePolicy::LeastLoaded => scan.min_by_key(|&node| {
            (
                busy_until[node].saturating_since(arrival),
                std::cmp::Reverse(residency[node]),
            )
        }),
    }
}

/// Routes every job of `stream` to a node — the one-shot convenience
/// over a [`Dispatcher`] with every node live and open-loop estimates
/// (exactly the paper-style offline front-end).
///
/// Fully deterministic: a pure function of its inputs, so two identical
/// dispatches produce identical per-node schedules.
///
/// # Panics
///
/// Panics when the plan, fabric and `nodes` disagree on the node count,
/// or a perf matrix lacks an entry the prediction needs.
#[must_use]
pub fn dispatch(
    stream: &RequestStream,
    model: &CoeModel,
    plan: &PlacementPlan,
    fabric: &Fabric,
    nodes: &[NodeLoadModel<'_>],
    route: RoutePolicy,
    activation_bytes: Bytes,
) -> DispatchOutcome {
    let n = nodes.len();
    assert!(n > 0, "dispatch needs at least one node");
    let mut dispatcher = Dispatcher::new(n, route, activation_bytes, FeedbackMode::OpenLoop, false);
    let alive = vec![true; n];
    let mut per_node: Vec<Vec<Job>> = vec![Vec::new(); n];
    for job in stream.jobs() {
        match dispatcher.route_job(job, model, plan, fabric, nodes, &alive) {
            Routing::Routed { node, job } => per_node[node].push(job),
            Routing::Unhosted { expert } => {
                unreachable!("lax dispatch never rejects (expert {expert})")
            }
            Routing::Paced => unreachable!("one-shot dispatch never paces"),
        }
    }
    DispatchOutcome {
        per_node,
        cross_node_hops: dispatcher.cross_node_hops(),
        fabric_time_total: dispatcher.fabric_time_total(),
    }
}

/// Predicted service time of one request chain on a node: the measured
/// `K + B` per stage, divided by the executors draining in parallel.
fn predicted_service(model: &CoeModel, node: &NodeLoadModel<'_>, stages: &[ExpertId]) -> SimSpan {
    let proc = if node.has_gpu {
        ProcessorKind::Gpu
    } else {
        ProcessorKind::Cpu
    };
    let total: SimSpan = stages
        .iter()
        .map(|&e| {
            let arch = model.expert(e).arch();
            node.perf.expect_entry(arch, proc).predicted_latency(1)
        })
        .sum();
    SimSpan::from_millis_f64(total.as_millis_f64() / node.executors.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{plan_placement, PlacementStrategy};
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_sim::network::LinkProfile;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;

    fn setup(nodes: usize) -> (CoeModel, PerfMatrix, RequestStream, Fabric) {
        let board = BoardSpec::synthetic("disp", 30, 3, 1.2, 40.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = RequestStream::generate(
            "disp",
            &board,
            &model,
            300,
            SimSpan::from_millis(4),
            StreamOrder::Iid,
            11,
        );
        let fabric = Fabric::fully_connected(nodes, LinkProfile::ethernet_10g());
        (model, perf, stream, fabric)
    }

    fn load_models(perf: &PerfMatrix, n: usize) -> Vec<NodeLoadModel<'_>> {
        vec![
            NodeLoadModel {
                perf,
                executors: 4,
                has_gpu: true,
            };
            n
        ]
    }

    #[test]
    fn every_job_is_routed_exactly_once() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        for route in RoutePolicy::ALL {
            let out = dispatch(
                &stream,
                &model,
                &plan,
                &fabric,
                &load_models(&perf, 4),
                route,
                Bytes::mib(8),
            );
            let total: usize = out.per_node.iter().map(Vec::len).sum();
            assert_eq!(total, stream.len(), "{route} lost or duplicated jobs");
        }
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 4),
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        for node in &out.per_node {
            assert_eq!(node.len(), stream.len() / 4);
        }
    }

    #[test]
    fn residency_first_avoids_hops_round_robin_pays_them() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::UsageAware, 7);
        let nodes = load_models(&perf, 4);
        let rf = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        let rr = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        assert!(
            rf.cross_node_hops < rr.cross_node_hops,
            "residency-first {} vs round-robin {}",
            rf.cross_node_hops,
            rr.cross_node_hops
        );
        assert!(rr.cross_node_hops > 0, "sharded tail must cause hops");
        assert!(rr.fabric_time_total > SimSpan::ZERO);
    }

    #[test]
    fn replicated_placement_never_crosses_nodes() {
        let (model, perf, stream, fabric) = setup(3);
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::Replicated, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 3),
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
        );
        assert_eq!(out.cross_node_hops, 0);
        assert_eq!(out.fabric_time_total, SimSpan::ZERO);
        // Arrivals are then untouched.
        for (node, jobs) in out.per_node.iter().enumerate() {
            for j in jobs {
                assert_eq!(
                    j.arrival,
                    stream.jobs()[j.id.index()].arrival,
                    "node {node}"
                );
            }
        }
    }

    #[test]
    fn fabric_delay_shifts_arrivals_forward() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Sharded, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 4),
            RoutePolicy::RoundRobin,
            Bytes::mib(8),
        );
        assert!(out.cross_node_hops > 0);
        let mut delayed = 0usize;
        for jobs in &out.per_node {
            for j in jobs {
                let original = stream.jobs()[j.id.index()].arrival;
                assert!(j.arrival >= original, "fabric can only delay");
                if j.arrival > original {
                    delayed += 1;
                }
            }
        }
        assert!(delayed > 0, "sharded + round-robin must delay some jobs");
    }

    #[test]
    fn least_loaded_balances_work_left() {
        let (model, perf, stream, fabric) = setup(2);
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Replicated, 7);
        let out = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &load_models(&perf, 2),
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
        );
        let (a, b) = (out.per_node[0].len(), out.per_node[1].len());
        assert!(
            a.abs_diff(b) <= stream.len() / 10,
            "least-loaded badly skewed: {a} vs {b}"
        );
    }

    #[test]
    fn dispatch_is_deterministic() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Random, 3);
        let nodes = load_models(&perf, 4);
        let a = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        let b = dispatch(
            &stream,
            &model,
            &plan,
            &fabric,
            &nodes,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn dead_nodes_are_never_routed_to() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Replicated, 7);
        let nodes = load_models(&perf, 4);
        let mut d = Dispatcher::new(
            4,
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
            FeedbackMode::OpenLoop,
            true,
        );
        let alive = [true, false, true, false];
        for job in stream.jobs() {
            match d.route_job(job, &model, &plan, &fabric, &nodes, &alive) {
                Routing::Routed { node, .. } => assert!(alive[node], "routed to dead node {node}"),
                Routing::Unhosted { expert } => {
                    panic!("replicated placement cannot orphan {expert}")
                }
                Routing::Paced => panic!("pacing is off"),
            }
        }
        assert_eq!(d.cross_node_hops(), 0);
    }

    #[test]
    fn strict_hosting_rejects_orphaned_chains() {
        let (model, perf, stream, fabric) = setup(2);
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Sharded, 7);
        let nodes = load_models(&perf, 2);
        let mut d = Dispatcher::new(
            2,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
            FeedbackMode::OpenLoop,
            true,
        );
        // Node 1 is dead: every expert sharded onto it is orphaned.
        let alive = [true, false];
        let mut rejected = 0usize;
        for job in stream.jobs() {
            if let Routing::Unhosted { expert } =
                d.route_job(job, &model, &plan, &fabric, &nodes, &alive)
            {
                assert!(plan.is_placed(1, expert) && !plan.is_placed(0, expert));
                rejected += 1;
            }
        }
        assert!(
            rejected > 0,
            "half the shard is gone; some chains must fail"
        );
    }

    #[test]
    fn feedback_scales_predictions_and_scores_error() {
        let (model, perf, stream, fabric) = setup(2);
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Replicated, 7);
        let nodes = load_models(&perf, 2);
        let alive = [true, true];
        let mut d = Dispatcher::new(
            2,
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
            FeedbackMode::Corrected,
            true,
        );
        assert_eq!(d.estimate_error_ms(), None);
        for job in stream.jobs().iter().take(50) {
            let _ = d.route_job(job, &model, &plan, &fabric, &nodes, &alive);
        }
        // Pretend both nodes took 3× the predicted busy time and
        // finished late: the error ledger fills and, corrected, the
        // scale rises above 1.
        let observed_finish = SimTime::ZERO + SimSpan::from_secs(30);
        d.observe(0, observed_finish, SimSpan::from_secs(20));
        d.observe(1, observed_finish, SimSpan::from_secs(20));
        let err = d.estimate_error_ms().expect("two observations");
        assert!(err > 0.0);
        assert!(d.service_scale[0] > 1.0 && d.service_scale[1] > 1.0);
        // A second observation round with no new work is a no-op.
        d.observe(0, SimTime::ZERO, SimSpan::ZERO);
        assert_eq!(d.estimate_error_ms(), Some(err));
    }

    #[test]
    fn pacing_budget_filters_and_sheds() {
        let (model, perf, stream, fabric) = setup(2);
        let plan = plan_placement(&model, &perf, 2, PlacementStrategy::Replicated, 7);
        let nodes = load_models(&perf, 2);
        let alive = [true, true];
        let mut d = Dispatcher::new(
            2,
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
            FeedbackMode::OpenLoop,
            true,
        )
        .with_pacing(true);
        // Node 0 overflowed last tick after absorbing 2 jobs; node 1
        // absorbed 4 cleanly (no budget).
        d.observe_admission(
            0,
            2,
            10,
            SimSpan::from_millis(100),
            SimSpan::from_millis(100),
        );
        d.observe_admission(
            1,
            4,
            0,
            SimSpan::from_millis(100),
            SimSpan::from_millis(100),
        );
        d.begin_tick();
        let mut to = [0usize; 2];
        for job in stream.jobs().iter().take(20) {
            if let Routing::Routed { node, .. } =
                d.route_job(job, &model, &plan, &fabric, &nodes, &alive)
            {
                to[node] += 1;
            }
        }
        // Budget = 2 + 2/4 + 1 = 3: node 0 takes at most 3 of the 20,
        // the unbudgeted node takes the spill.
        assert!(to[0] <= 3, "budget must cap node 0: {to:?}");
        assert_eq!(to[0] + to[1], 20, "spill is routed, not shed: {to:?}");
        // With node 1 dead, the same budget exhausts the whole fleet
        // and further jobs are shed at the front-end.
        d.begin_tick();
        let dead = [true, false];
        let mut shed = 0usize;
        for job in stream.jobs().iter().take(20) {
            if matches!(
                d.route_job(job, &model, &plan, &fabric, &nodes, &dead),
                Routing::Paced
            ) {
                shed += 1;
            }
        }
        assert_eq!(shed, 20 - 3, "everything past the budget is shed");
        // Clean ticks grow the budget back until it stops binding.
        d.observe_admission(
            0,
            3,
            0,
            SimSpan::from_millis(100),
            SimSpan::from_millis(100),
        );
        assert!(d.tick_budget[0].unwrap() > 3);
        // A forgotten (killed/revived) node starts unpaced.
        d.forget_node(0);
        assert_eq!(d.tick_budget[0], None);
    }

    #[test]
    fn pacing_off_routes_identically() {
        let (model, perf, stream, fabric) = setup(3);
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::UsageAware, 7);
        let nodes = load_models(&perf, 3);
        let alive = [true, true, true];
        let mut plain = Dispatcher::new(
            3,
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
            FeedbackMode::OpenLoop,
            true,
        );
        // Paced but never observing drops: budgets never materialize,
        // so routing is bit-identical to the un-paced dispatcher.
        let mut paced = plain.clone().with_pacing(true);
        for job in stream.jobs() {
            paced.begin_tick();
            let a = plain.route_job(job, &model, &plan, &fabric, &nodes, &alive);
            let b = paced.route_job(job, &model, &plan, &fabric, &nodes, &alive);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn route_policy_displays() {
        assert_eq!(RoutePolicy::ResidencyFirst.to_string(), "residency-first");
        assert_eq!(RoutePolicy::LeastLoaded.to_string(), "least-loaded");
        assert_eq!(RoutePolicy::RoundRobin.to_string(), "round-robin");
        assert_eq!(FeedbackMode::OpenLoop.to_string(), "open-loop");
        assert_eq!(FeedbackMode::Corrected.to_string(), "feedback");
    }

    #[test]
    fn corrected_feedback_steers_off_a_slow_node() {
        let (model, perf, stream, fabric) = setup(3);
        let plan = plan_placement(&model, &perf, 3, PlacementStrategy::Replicated, 7);
        let nodes = load_models(&perf, 3);
        let alive = vec![true; 3];
        let mut d = Dispatcher::new(
            3,
            RoutePolicy::LeastLoaded,
            Bytes::mib(8),
            FeedbackMode::Corrected,
            false,
        );
        // One burst: every job arrives at once, so the work-left
        // estimates actually accumulate instead of draining between
        // arrivals (spread-out arrivals leave every node idle and tied).
        let jobs: Vec<Job> = stream
            .jobs()
            .iter()
            .map(|j| Job {
                id: j.id,
                class: j.class,
                arrival: SimTime::ZERO,
                stages: j.stages.clone(),
            })
            .collect();
        let (warmup, measured) = jobs.split_at(60);
        for job in warmup {
            d.route_job(job, &model, &plan, &fabric, &nodes, &alive);
        }
        // Telemetry for the warmup tick: node 0 spent far more busy
        // time than predicted (a slow node), the others far less. The
        // correction EWMA must steer the next tick's jobs away from 0.
        let finish = SimTime::ZERO + SimSpan::from_millis(500);
        d.observe(0, finish, SimSpan::from_secs(100));
        d.observe(1, finish, SimSpan::ZERO);
        d.observe(2, finish, SimSpan::ZERO);
        let mut counts = [0usize; 3];
        for job in measured {
            if let Routing::Routed { node, .. } =
                d.route_job(job, &model, &plan, &fabric, &nodes, &alive)
            {
                counts[node] += 1;
            }
        }
        assert!(
            counts[0] < counts[1] && counts[0] < counts[2],
            "slow node must receive the least work: {counts:?}"
        );
    }

    #[test]
    fn disabled_fault_plan_routes_bit_identically() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Sharded, 7);
        let nodes = load_models(&perf, 4);
        let alive = vec![true; 4];
        let mut plain = Dispatcher::new(
            4,
            RoutePolicy::ResidencyFirst,
            Bytes::mib(8),
            FeedbackMode::OpenLoop,
            false,
        );
        let mut faulted = plain.clone();
        let disabled = coserve_faults::FaultPlan::disabled();
        let mut ledger = FaultLedger::default();
        for job in stream.jobs() {
            let a = plain.route_job(job, &model, &plan, &fabric, &nodes, &alive);
            let b = faulted.route_job_with_faults(
                job,
                &model,
                &plan,
                &fabric,
                &nodes,
                &alive,
                Some(RouteFaults {
                    plan: &disabled,
                    ledger: &mut ledger,
                    hedge: true,
                }),
            );
            assert_eq!(a, b, "a disabled plan must not change any decision");
        }
        assert_eq!(plain.fabric_time_total(), faulted.fabric_time_total());
        assert!(ledger.is_empty(), "nothing may be charged without faults");
    }

    #[test]
    fn dilated_links_stretch_charged_hops() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Sharded, 7);
        let nodes = load_models(&perf, 4);
        let alive = vec![true; 4];
        let fresh = || {
            Dispatcher::new(
                4,
                RoutePolicy::RoundRobin,
                Bytes::mib(8),
                FeedbackMode::OpenLoop,
                false,
            )
        };
        let mut baseline = fresh();
        for job in stream.jobs() {
            baseline.route_job(job, &model, &plan, &fabric, &nodes, &alive);
        }
        let fault_plan = coserve_faults::FaultPlan::seeded(5).with_link(
            0.9,
            4.0,
            Vec::new(),
            coserve_faults::FaultWindow::ALWAYS,
        );
        let mut ledger = FaultLedger::default();
        let mut slow = fresh();
        for job in stream.jobs() {
            slow.route_job_with_faults(
                job,
                &model,
                &plan,
                &fabric,
                &nodes,
                &alive,
                Some(RouteFaults {
                    plan: &fault_plan,
                    ledger: &mut ledger,
                    hedge: false,
                }),
            );
        }
        assert!(ledger.link_dilated > 0, "rate 0.9 must dilate some hops");
        assert!(ledger.degraded_time > SimSpan::ZERO);
        assert!(
            slow.fabric_time_total() > baseline.fabric_time_total(),
            "4x dilation must stretch total fabric time"
        );
    }

    #[test]
    fn partitions_hedge_when_enabled_and_degrade_when_not() {
        let (model, perf, stream, fabric) = setup(4);
        let plan = plan_placement(&model, &perf, 4, PlacementStrategy::Sharded, 7);
        let nodes = load_models(&perf, 4);
        let alive = vec![true; 4];
        // Node 0 is cut off from everyone: any job it would take with
        // off-node stages needs recovery.
        let cuts = vec![(0, 1), (0, 2), (0, 3)];
        let run = |hedge: bool| {
            let fault_plan = coserve_faults::FaultPlan::seeded(5).with_link(
                0.0,
                1.0,
                cuts.clone(),
                coserve_faults::FaultWindow::ALWAYS,
            );
            let mut ledger = FaultLedger::default();
            let mut d = Dispatcher::new(
                4,
                RoutePolicy::RoundRobin,
                Bytes::mib(8),
                FeedbackMode::OpenLoop,
                false,
            );
            let mut to_zero = 0usize;
            for job in stream.jobs() {
                if let Routing::Routed { node, .. } = d.route_job_with_faults(
                    job,
                    &model,
                    &plan,
                    &fabric,
                    &nodes,
                    &alive,
                    Some(RouteFaults {
                        plan: &fault_plan,
                        ledger: &mut ledger,
                        hedge,
                    }),
                ) {
                    if node == 0 {
                        to_zero += 1;
                    }
                }
            }
            (ledger, to_zero)
        };
        let (hedged, _) = run(true);
        assert!(hedged.hedged_reroutes > 0, "hedging must fire on cuts");
        assert!(hedged.recovery_span().is_some());
        let (degraded, to_zero) = run(false);
        assert_eq!(degraded.hedged_reroutes, 0);
        assert!(
            degraded.degraded_local > 0,
            "without hedging, cut stages fall back to local checkpoints"
        );
        assert!(degraded.link_partitioned > 0);
        assert!(to_zero > 0, "degraded jobs stay on the cut node");
    }
}
