//! Microbenchmarks for the event calendar: steady-state pop/push churn
//! against the per-step minimum scan it replaced, at three queue
//! populations (1 k, 100 k, 10 M pending events).
//!
//! The scan's per-pop cost is linear in the population while the
//! calendar's is logarithmic at worst (and amortized constant on the
//! monotone lane path), so the widening gap across the populations is
//! the engine-core speedup mechanism made directly visible. The 10 M
//! population is the regime of the `fig23_engine_scale` figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coserve_sim::events::Calendar;
use coserve_sim::rng::SimRng;
use coserve_sim::time::{SimSpan, SimTime};

/// Lanes mirroring the engine's event classes.
const LANES: usize = 4;

/// Pop/push operations per measured iteration.
fn churn_ops(population: usize) -> usize {
    // The scan baseline is O(population) per pop; keep a 10 M-event
    // sample under a second so the full suite stays runnable.
    if population >= 1_000_000 {
        10
    } else {
        1_000
    }
}

/// Fills a calendar with `n` events whose times sit in a sliding
/// window, so lane pushes are mostly monotone (the append fast path)
/// with occasional out-of-order fallbacks to the heap — the mix a real
/// engine session produces.
fn filled_calendar(n: usize, rng: &mut SimRng) -> Calendar<u64> {
    let mut cal = Calendar::new(LANES);
    let mut base = 0u64;
    for i in 0..n {
        base += rng.next_below(1_000);
        let at = SimTime::ZERO + SimSpan::from_nanos(base + rng.next_below(100_000));
        cal.push_lane(i % LANES, at, i as u64);
    }
    cal
}

fn filled_vec(n: usize, rng: &mut SimRng) -> Vec<(SimTime, u64)> {
    let mut queue = Vec::with_capacity(n + 1);
    let mut base = 0u64;
    for i in 0..n {
        base += rng.next_below(1_000);
        let at = SimTime::ZERO + SimSpan::from_nanos(base + rng.next_below(100_000));
        queue.push((at, i as u64));
    }
    queue
}

/// Steady-state churn on the calendar: pop the next event, reschedule
/// it a little later. The population stays constant.
fn churn_calendar(cal: &mut Calendar<u64>, rng: &mut SimRng, ops: usize) -> u64 {
    let mut acc = 0;
    for _ in 0..ops {
        let ev = cal.pop().expect("population is constant");
        acc ^= ev.payload;
        let at = ev.at + SimSpan::from_nanos(1 + rng.next_below(1_000_000));
        cal.push_lane((ev.payload % LANES as u64) as usize, at, ev.payload);
    }
    acc
}

/// The same churn against the pre-calendar idiom: a flat vector whose
/// every pop scans for the minimum timestamp.
fn churn_scan(queue: &mut Vec<(SimTime, u64)>, rng: &mut SimRng, ops: usize) -> u64 {
    let mut acc = 0;
    for _ in 0..ops {
        let mut min = 0;
        for (i, e) in queue.iter().enumerate() {
            if e.0 < queue[min].0 {
                min = i;
            }
        }
        let (at, payload) = queue.swap_remove(min);
        acc ^= payload;
        queue.push((
            at + SimSpan::from_nanos(1 + rng.next_below(1_000_000)),
            payload,
        ));
    }
    acc
}

fn bench_calendar_vs_scan(c: &mut Criterion) {
    for population in [1_000usize, 100_000, 10_000_000] {
        let ops = churn_ops(population);
        let mut group = c.benchmark_group(format!("calendar_churn_{population}_events"));
        group.sample_size(10);

        let mut rng = SimRng::seed_from(0xca1e);
        let mut cal = filled_calendar(population, &mut rng);
        group.bench_function(format!("calendar_pop_push_{ops}x"), |b| {
            b.iter(|| black_box(churn_calendar(&mut cal, &mut rng, ops)));
        });
        drop(cal);

        let mut rng = SimRng::seed_from(0xca1e);
        let mut queue = filled_vec(population, &mut rng);
        group.bench_function(format!("scan_pop_push_{ops}x"), |b| {
            b.iter(|| black_box(churn_scan(&mut queue, &mut rng, ops)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_calendar_vs_scan);
criterion_main!(benches);
