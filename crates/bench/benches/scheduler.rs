//! Microbenchmarks for the dependency-aware request scheduler's data
//! structures: grouped insertion, batch peeling, and run enumeration —
//! the per-request costs Figure 19 argues stay below inference latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use coserve_core::queue::{ExecutorQueue, PendingRequest};
use coserve_model::expert::ExpertId;
use coserve_sim::rng::SimRng;
use coserve_sim::time::SimTime;
use coserve_workload::stream::JobId;

fn filled_queue(n: usize, experts: u32, grouped: bool, seed: u64) -> ExecutorQueue {
    let mut rng = SimRng::seed_from(seed);
    let mut q = ExecutorQueue::new();
    for i in 0..n {
        let req = PendingRequest {
            job: JobId(i as u32),
            stage: 0,
            expert: ExpertId(rng.next_below(u64::from(experts)) as u32),
            ready_at: SimTime::ZERO,
        };
        if grouped {
            q.insert_grouped(req);
        } else {
            q.push_back(req);
        }
    }
    q
}

fn bench_arranging(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_arranging");
    for &len in &[100usize, 1_000, 5_000] {
        group.bench_function(format!("insert_grouped/{len}"), |b| {
            b.iter_batched(
                || filled_queue(len, 64, true, 1),
                |mut q| {
                    q.insert_grouped(PendingRequest {
                        job: JobId(u32::MAX),
                        stage: 0,
                        expert: ExpertId(7),
                        ready_at: SimTime::ZERO,
                    });
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("push_back_fcfs/{len}"), |b| {
            b.iter_batched(
                || filled_queue(len, 64, false, 1),
                |mut q| {
                    q.push_back(PendingRequest {
                        job: JobId(u32::MAX),
                        stage: 0,
                        expert: ExpertId(7),
                        ready_at: SimTime::ZERO,
                    });
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_prediction_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_prediction");
    for &len in &[100usize, 1_000, 5_000] {
        let grouped = filled_queue(len, 64, true, 2);
        group.bench_function(format!("runs_grouped/{len}"), |b| {
            b.iter(|| black_box(grouped.runs().len()));
        });
        let fcfs = filled_queue(len, 64, false, 2);
        group.bench_function(format!("runs_fcfs/{len}"), |b| {
            b.iter(|| black_box(fcfs.runs().len()));
        });
    }
    group.finish();
}

fn bench_batch_peeling(c: &mut Criterion) {
    c.bench_function("pop_front_group/1000", |b| {
        b.iter_batched(
            || filled_queue(1_000, 16, true, 3),
            |mut q| {
                let mut popped = 0;
                while !q.is_empty() {
                    popped += q.pop_front_group(16).len();
                }
                black_box(popped)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_arranging,
    bench_prediction_primitives,
    bench_batch_peeling
);
criterion_main!(benches);
