//! Microbenchmarks for the dependency-aware request scheduler's data
//! structures: grouped insertion, batch peeling, and run enumeration —
//! the per-request costs Figure 19 argues stay below inference latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use coserve_core::queue::{ExecutorQueue, PendingRequest};
use coserve_model::expert::ExpertId;
use coserve_sim::rng::SimRng;
use coserve_sim::time::SimTime;
use coserve_workload::stream::JobId;

fn filled_queue(n: usize, experts: u32, grouped: bool, seed: u64) -> ExecutorQueue {
    let mut rng = SimRng::seed_from(seed);
    let mut q = ExecutorQueue::new();
    for i in 0..n {
        let req = PendingRequest {
            job: JobId(i as u32),
            stage: 0,
            expert: ExpertId(rng.next_below(u64::from(experts)) as u32),
            ready_at: SimTime::ZERO,
        };
        if grouped {
            q.insert_grouped(req);
        } else {
            q.push_back(req);
        }
    }
    q
}

fn bench_arranging(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_arranging");
    for &len in &[100usize, 1_000, 5_000] {
        group.bench_function(format!("insert_grouped/{len}"), |b| {
            b.iter_batched(
                || filled_queue(len, 64, true, 1),
                |mut q| {
                    q.insert_grouped(PendingRequest {
                        job: JobId(u32::MAX),
                        stage: 0,
                        expert: ExpertId(7),
                        ready_at: SimTime::ZERO,
                    });
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("push_back_fcfs/{len}"), |b| {
            b.iter_batched(
                || filled_queue(len, 64, false, 1),
                |mut q| {
                    q.push_back(PendingRequest {
                        job: JobId(u32::MAX),
                        stage: 0,
                        expert: ExpertId(7),
                        ready_at: SimTime::ZERO,
                    });
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_prediction_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_prediction");
    for &len in &[100usize, 1_000, 5_000] {
        let grouped = filled_queue(len, 64, true, 2);
        // The maintained run index (what the assigner now probes) vs
        // the from-scratch rescan it replaced.
        group.bench_function(format!("runs_iter_incremental/{len}"), |b| {
            b.iter(|| black_box(grouped.runs_iter().count()));
        });
        group.bench_function(format!("runs_recompute_scan/{len}"), |b| {
            b.iter(|| black_box(grouped.recompute_runs().len()));
        });
        let fcfs = filled_queue(len, 64, false, 2);
        group.bench_function(format!("runs_fcfs/{len}"), |b| {
            b.iter(|| black_box(fcfs.runs_iter().count()));
        });
    }
    group.finish();
}

fn bench_bounded_arranging(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_arranging_bounded");
    for &len in &[1_000usize, 5_000] {
        group.bench_function(format!("insert_grouped_bounded/{len}"), |b| {
            b.iter_batched(
                || filled_queue(len, 64, true, 1),
                |mut q| {
                    q.insert_grouped_bounded(
                        PendingRequest {
                            job: JobId(u32::MAX),
                            stage: 0,
                            expert: ExpertId(7),
                            ready_at: SimTime::ZERO,
                        },
                        8,
                    );
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The full assign/arrange hot path: a DependencyAware + Grouped engine
/// serving a dense stream — every request probes every executor's
/// work-left aggregates and grouped-inserts into the chosen queue.
fn bench_assign_arrange_engine(c: &mut Criterion) {
    use coserve_core::config::SystemConfig;
    use coserve_core::engine::Engine;
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_sim::time::SimSpan;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::{RequestStream, StreamOrder};

    let board = BoardSpec::synthetic("sched-bench", 40, 3, 1.2, 40.0, 0.5);
    let model = board.build_model().expect("valid board");
    let device = coserve_model::devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = RequestStream::generate(
        "sched-bench",
        &board,
        &model,
        600,
        SimSpan::from_micros(500),
        StreamOrder::Iid,
        11,
    );
    for executors in [2usize, 4] {
        let config = SystemConfig::builder("assign-bench")
            .gpu_executors(executors)
            .build();
        let engine = Engine::new(&device, &model, &perf, &config).expect("valid engine");
        c.bench_function(
            format!("assign_arrange/dependency_aware_{executors}exec_600req"),
            |b| b.iter(|| black_box(engine.run(&stream).completed)),
        );
    }
}

fn bench_batch_peeling(c: &mut Criterion) {
    c.bench_function("pop_front_group/1000", |b| {
        b.iter_batched(
            || filled_queue(1_000, 16, true, 3),
            |mut q| {
                let mut popped = 0;
                while !q.is_empty() {
                    popped += q.pop_front_group(16).len();
                }
                black_box(popped)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_arranging,
    bench_bounded_arranging,
    bench_prediction_primitives,
    bench_batch_peeling,
    bench_assign_arrange_engine
);
criterion_main!(benches);
