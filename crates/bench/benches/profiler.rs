//! Offline-phase benchmarks: the microbenchmark sweep, the full
//! profiling pass, usage-probability computation, and the decay-window
//! search — the costs a deployment pays once per device (§4.5).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coserve_core::autotune::{window_search, WindowSearchOptions};
use coserve_core::presets;
use coserve_core::profiler::{estimate_usage, Profiler, UsageSource};
use coserve_model::arch::RESNET101;
use coserve_model::devices;
use coserve_sim::device::ProcessorKind;
use coserve_workload::task::TaskSpec;

fn bench_sweep_and_profile(c: &mut Criterion) {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1().scaled(0.01);
    let model = task.build_model().expect("board A validates");
    let profiler = Profiler::with_defaults();

    c.bench_function("profiler_sweep_resnet101_gpu", |b| {
        b.iter(|| black_box(profiler.sweep(&device, RESNET101, ProcessorKind::Gpu).len()));
    });

    c.bench_function("profiler_full_profile_370_experts", |b| {
        b.iter(|| {
            let matrix = profiler.profile(&device, &model, UsageSource::Declared);
            black_box(matrix.num_experts())
        });
    });
}

fn bench_usage_estimation(c: &mut Criterion) {
    let task = TaskSpec::a1();
    let model = task.build_model().expect("board A validates");
    let sample = task.sample(2_000).stream(&model);
    c.bench_function("estimate_usage_2000_samples", |b| {
        b.iter(|| black_box(estimate_usage(&model, &sample).len()));
    });
}

fn bench_window_search(c: &mut Criterion) {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1().scaled(0.05);
    let model = task.build_model().expect("board A validates");
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let sample = task.sample(120).stream(&model);
    let base = presets::coserve(&device);
    let mut group = c.benchmark_group("autotune");
    group.sample_size(10);
    group.bench_function("window_search_120_sample_requests", |b| {
        b.iter(|| {
            let result = window_search(
                &device,
                &model,
                &perf,
                &base,
                &sample,
                WindowSearchOptions {
                    max_trials: 5,
                    ..WindowSearchOptions::default()
                },
            );
            black_box(result.chosen)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_and_profile,
    bench_usage_estimation,
    bench_window_search
);
criterion_main!(benches);
