//! End-to-end engine benchmarks: how fast the simulator serves the
//! paper workloads under each system, plus an ablation of the
//! dependency-aware assignment's prediction cost (the engine's most
//! expensive per-request computation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coserve_baselines::samba::samba_coe;
use coserve_core::config::SystemConfig;
use coserve_core::engine::Engine;
use coserve_core::perf::PerfMatrix;
use coserve_core::presets;
use coserve_core::profiler::{Profiler, UsageSource};
use coserve_model::coe::CoeModel;
use coserve_sim::device::DeviceProfile;
use coserve_workload::stream::RequestStream;
use coserve_workload::task::TaskSpec;

struct Ctx {
    device: DeviceProfile,
    model: CoeModel,
    perf: PerfMatrix,
    stream: RequestStream,
}

fn ctx(requests_fraction: f64) -> Ctx {
    let task = TaskSpec::a1().scaled(requests_fraction);
    let model = task.build_model().expect("board A validates");
    let device = coserve_model::devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    Ctx {
        device,
        model,
        perf,
        stream,
    }
}

fn run(ctx: &Ctx, config: &SystemConfig) -> f64 {
    Engine::new(&ctx.device, &ctx.model, &ctx.perf, config)
        .expect("valid config")
        .run(&ctx.stream)
        .throughput_ips()
}

fn bench_systems(c: &mut Criterion) {
    let ctx = ctx(0.2); // 500 requests of Task A1
    let mut group = c.benchmark_group("engine_serve_500_requests");
    group.sample_size(10);
    let coserve_cfg = presets::coserve(&ctx.device);
    group.bench_function("coserve_full", |b| {
        b.iter(|| black_box(run(&ctx, &coserve_cfg)));
    });
    let samba_cfg = samba_coe(&ctx.device);
    group.bench_function("samba_coe", |b| {
        b.iter(|| black_box(run(&ctx, &samba_cfg)));
    });
    let none_cfg = presets::coserve_none(&ctx.device);
    group.bench_function("coserve_none", |b| {
        b.iter(|| black_box(run(&ctx, &none_cfg)));
    });
    group.finish();
}

/// Ablation bench for a deliberate scheduler design choice: the
/// dependency-aware assignment predicts queue totals per arrival
/// (O(executors × runs)); round-robin is O(1). This quantifies the
/// simulator-side cost of that choice.
fn bench_assignment_cost(c: &mut Criterion) {
    let ctx = ctx(0.2);
    let mut group = c.benchmark_group("engine_assignment_ablation");
    group.sample_size(10);
    let dependency_aware = presets::coserve(&ctx.device);
    let mut round_robin = presets::coserve(&ctx.device);
    round_robin.assign = coserve_core::config::AssignPolicy::RoundRobin;
    group.bench_function("dependency_aware_assign", |b| {
        b.iter(|| black_box(run(&ctx, &dependency_aware)));
    });
    group.bench_function("round_robin_assign", |b| {
        b.iter(|| black_box(run(&ctx, &round_robin)));
    });
    group.finish();
}

fn bench_preload(c: &mut Criterion) {
    let ctx = ctx(0.02);
    let mut group = c.benchmark_group("engine_initialization");
    group.sample_size(20);
    let config = presets::coserve(&ctx.device);
    group.bench_function("build_and_preload_370_experts", |b| {
        b.iter(|| {
            let engine =
                Engine::new(&ctx.device, &ctx.model, &ctx.perf, &config).expect("valid config");
            black_box(engine.memory_layout().executors.len())
        });
    });
    group.finish();
}

/// Ablation bench over the eviction-policy axis: the dependency-aware
/// two-stage policy vs LRU, FIFO and LFU, end to end.
fn bench_eviction_policies(c: &mut Criterion) {
    let ctx = ctx(0.1);
    let mut group = c.benchmark_group("engine_eviction_ablation");
    group.sample_size(10);
    for policy in [
        coserve_core::evict::EvictionPolicy::DependencyAware,
        coserve_core::evict::EvictionPolicy::Lru,
        coserve_core::evict::EvictionPolicy::Fifo,
        coserve_core::evict::EvictionPolicy::Lfu,
    ] {
        let mut cfg = presets::coserve(&ctx.device);
        cfg.eviction = policy;
        group.bench_function(format!("{policy}"), |b| {
            b.iter(|| black_box(run(&ctx, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_systems,
    bench_assignment_cost,
    bench_preload,
    bench_eviction_policies
);
criterion_main!(benches);
