//! Microbenchmarks for the eviction policies: CoServe's two-stage
//! dependency-aware selection vs LRU and FIFO, across pool sizes — the
//! "expert management" cost the paper bounds at <0.2 % of task time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

use coserve_core::evict::{
    select_victims, select_victims_into, EvictionContext, EvictionPolicy, EvictionScratch,
};
use coserve_core::perf::PerfMatrix;
use coserve_core::pool::ModelPool;
use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_sim::memory::Bytes;
use coserve_sim::time::{SimSpan, SimTime};
use coserve_workload::board::BoardSpec;

/// A realistic pool: the first `n` experts of Board A resident.
fn setup(n: u32) -> (CoeModel, PerfMatrix, ModelPool) {
    let board = BoardSpec::board_a();
    let model = board.build_model().expect("board A validates");
    let perf = PerfMatrix::from_model_with("bench", &model, |_, _| None);
    let mut pool = ModelPool::new(Bytes::gib(64));
    for i in 0..n {
        let e = ExpertId(i);
        pool.insert(
            e,
            model.weight_bytes(e),
            SimTime::ZERO + SimSpan::from_millis(u64::from(i)),
        )
        .expect("fits");
    }
    (model, perf, pool)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_select_victims");
    for &residents in &[16u32, 64, 256] {
        let (model, perf, pool) = setup(residents);
        let protected = BTreeSet::new();
        let ctx = EvictionContext {
            model: &model,
            perf: &perf,
            protected: &protected,
        };
        let need = Bytes::mib(400);
        for policy in [
            EvictionPolicy::DependencyAware,
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
        ] {
            group.bench_function(format!("{policy}/{residents}_residents"), |b| {
                b.iter(|| {
                    let victims = select_victims(policy, &pool, need, &ctx)
                        .expect("pool has enough unprotected bytes");
                    black_box(victims.len())
                });
            });
        }
    }
    group.finish();
}

fn bench_orphan_heavy_pool(c: &mut Criterion) {
    // A pool dominated by detection (subsequent) experts without their
    // preliminaries: stage 1 does all the work.
    let board = BoardSpec::board_a();
    let model = board.build_model().expect("board A validates");
    let perf = PerfMatrix::from_model_with("bench", &model, |_, _| None);
    let mut pool = ModelPool::new(Bytes::gib(16));
    for g in 0..board.num_detectors() as u32 {
        let e = board.detector_of(g);
        pool.insert(e, model.weight_bytes(e), SimTime::ZERO)
            .expect("fits");
    }
    let protected = BTreeSet::new();
    let ctx = EvictionContext {
        model: &model,
        perf: &perf,
        protected: &protected,
    };
    c.bench_function("eviction_stage1_orphans/18_detectors", |b| {
        b.iter(|| {
            let victims = select_victims(
                EvictionPolicy::DependencyAware,
                &pool,
                Bytes::mib(300),
                &ctx,
            )
            .expect("orphans cover the need");
            black_box(victims.len())
        });
    });
}

/// The engine's steady-state path: a pool packed to the brim (every
/// Board A expert resident) with the precomputed ascending-usage order
/// and reusable scratch, vs the allocating wrapper.
fn bench_full_pool_scratch_reuse(c: &mut Criterion) {
    let board = BoardSpec::board_a();
    let model = board.build_model().expect("board A validates");
    let perf = PerfMatrix::from_model_with("bench", &model, |_, _| None);
    let mut pool = ModelPool::new(Bytes::gib(128));
    for i in 0..model.num_experts() as u32 {
        let e = ExpertId(i);
        pool.insert(
            e,
            model.weight_bytes(e),
            SimTime::ZERO + SimSpan::from_millis(u64::from(i)),
        )
        .expect("fits");
    }
    let protected = BTreeSet::new();
    let ctx = EvictionContext {
        model: &model,
        perf: &perf,
        protected: &protected,
    };
    let need = Bytes::mib(400);
    let residents = pool.len();
    for policy in [EvictionPolicy::DependencyAware, EvictionPolicy::Lru] {
        let mut scratch = EvictionScratch::new();
        c.bench_function(
            format!("eviction_full_pool/{policy}_scratch/{residents}_residents"),
            |b| {
                b.iter(|| {
                    select_victims_into(
                        policy,
                        &pool,
                        need,
                        &ctx,
                        perf.experts_by_usage_asc(),
                        &mut scratch,
                    )
                    .expect("full pool covers the need");
                    black_box(scratch.victims().len())
                });
            },
        );
        c.bench_function(
            format!("eviction_full_pool/{policy}_alloc/{residents}_residents"),
            |b| {
                b.iter(|| {
                    let victims =
                        select_victims(policy, &pool, need, &ctx).expect("full pool covers");
                    black_box(victims.len())
                });
            },
        );
    }
}

criterion_group!(
    benches,
    bench_policies,
    bench_orphan_heavy_pool,
    bench_full_pool_scratch_reuse
);
criterion_main!(benches);
