//! Table 1: hardware for evaluation.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::table1_hardware(),
        "table1_hardware",
    );
}
