//! Figure 6: memory footprint vs batch size.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig06_mem_footprint(),
        "fig06_mem_footprint",
    );
}
