//! Figure 14: number of expert switches for CoServe and baselines.
fn main() {
    let (_, sw) = coserve_bench::figures::fig13_14_throughput_and_switches();
    coserve_bench::emit(&sw, "fig14_switches");
}
