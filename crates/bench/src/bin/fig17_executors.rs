//! Figure 17: throughput under different numbers of executors.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig17_executors(),
        "fig17_executors",
    );
}
