//! Figure 16: expert-switch breakdown for each CoServe optimization.
fn main() {
    let (_, sw) = coserve_bench::figures::fig15_16_ablation();
    coserve_bench::emit(&sw, "fig16_ablation_switches");
}
