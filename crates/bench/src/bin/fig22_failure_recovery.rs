//! Dynamic-runtime extension: failure recovery, re-placement and
//! dispatcher feedback under drifted usage.
fn main() {
    let (table, artifacts) = coserve_bench::figures::fig22_failure_recovery();
    coserve_bench::emit(&table, "fig22_failure_recovery");
    for (stem, json) in &artifacts {
        coserve_bench::emit_json(json, stem);
    }
}
