//! Figure 1: expert-switching latency share of total inference latency.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig01_switch_share(),
        "fig01_switch_share",
    );
}
