//! Figure 11: cumulative distribution function of expert usage.
fn main() {
    for (i, t) in coserve_bench::figures::fig11_usage_cdf().iter().enumerate() {
        coserve_bench::emit(t, &format!("fig11_usage_cdf_{i}"));
    }
}
