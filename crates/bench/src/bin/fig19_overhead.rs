//! Figure 19: scheduling vs inference latency and scheduling overhead.
fn main() {
    coserve_bench::emit(&coserve_bench::figures::fig19_overhead(), "fig19_overhead");
}
