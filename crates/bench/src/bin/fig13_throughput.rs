//! Figure 13: throughput of CoServe and baselines.
fn main() {
    let (thr, _) = coserve_bench::figures::fig13_14_throughput_and_switches();
    coserve_bench::emit(&thr, "fig13_throughput");
}
