//! Cluster extension: throughput and cross-node hops vs fleet size.
fn main() {
    let (table, artifacts) = coserve_bench::figures::fig21_cluster_scaling();
    coserve_bench::emit(&table, "fig21_cluster_scaling");
    for (stem, json) in &artifacts {
        coserve_bench::emit_json(json, stem);
    }
}
