//! Regenerates every table and figure of the paper in order.
//!
//! `--trace PATH` additionally runs the CoServe configuration on the
//! first (device, task) cell with tracing enabled and writes the
//! Chrome trace-event JSON to `PATH` (open it in Perfetto). The traced
//! run is an extra pass: every figure output stays byte-identical to
//! an untraced invocation.
use coserve_bench::{emit, emit_json, figures, Bench};

fn trace_path_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace" => Some(path.into()),
        [flag] if flag == "--trace" => {
            eprintln!("missing value for --trace");
            std::process::exit(2);
        }
        _ => {
            eprintln!("usage: all_figures [--trace PATH]");
            std::process::exit(2);
        }
    }
}

/// One traced CoServe run on the first paper cell: writes the Perfetto
/// dump and prints the trace-derived attribution and heat tables.
fn emit_trace(path: &std::path::Path) {
    let device = coserve_bench::paper_devices().remove(0);
    let task = coserve_bench::paper_tasks().remove(0);
    let bench = Bench::prepare(device, task);
    let config = coserve_core::presets::coserve(&bench.device);
    let (report, events) = bench.run_traced(&config);
    println!(
        "traced run: {} — {} events from {} requests",
        report.summary_line(),
        events.len(),
        report.submitted,
    );
    let attribution = coserve_metrics::attribution::LatencyAttribution::from_events(&events);
    print!("{}", attribution.table().render());
    let heat = coserve_metrics::attribution::ExpertHeat::from_events(&events);
    print!("{}", heat.table().render());
    let json = coserve_trace::chrome_trace_json(&events);
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, &json)
    };
    match write() {
        Ok(()) => println!("[trace] {}", path.display()),
        Err(err) => eprintln!("[trace] failed to write {}: {err}", path.display()),
    }
}

fn main() {
    let trace_path = trace_path_arg();
    emit(&figures::table1_hardware(), "table1_hardware");
    emit(&figures::fig01_switch_share(), "fig01_switch_share");
    emit(&figures::fig05_avg_latency(), "fig05_avg_latency");
    emit(&figures::fig06_mem_footprint(), "fig06_mem_footprint");
    for (i, t) in figures::fig11_usage_cdf().iter().enumerate() {
        emit(t, &format!("fig11_usage_cdf_{i}"));
    }
    for (i, t) in figures::fig12_exec_latency().iter().enumerate() {
        emit(t, &format!("fig12_exec_latency_{i}"));
    }
    let (thr, sw) = figures::fig13_14_throughput_and_switches();
    emit(&thr, "fig13_throughput");
    emit(&sw, "fig14_switches");
    let (athr, asw) = figures::fig15_16_ablation();
    emit(&athr, "fig15_ablation_throughput");
    emit(&asw, "fig16_ablation_switches");
    emit(&figures::fig17_executors(), "fig17_executors");
    emit(&figures::fig18_window_search(), "fig18_window_search");
    emit(&figures::fig19_overhead(), "fig19_overhead");
    emit(&figures::fig20_latency_vs_load(), "fig20_latency_vs_load");
    let (cluster, artifacts) = figures::fig21_cluster_scaling();
    emit(&cluster, "fig21_cluster_scaling");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
    let (recovery, artifacts) = figures::fig22_failure_recovery();
    emit(&recovery, "fig22_failure_recovery");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
    let (engine_scale, artifacts) = figures::fig23_engine_scale();
    emit(&engine_scale, "fig23_engine_scale");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
    let (faults, artifacts) = figures::fig24_fault_matrix();
    emit(&faults, "fig24_fault_matrix");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
    if let Some(path) = trace_path {
        emit_trace(&path);
    }
}
