//! Regenerates every table and figure of the paper in order.
use coserve_bench::{emit, emit_json, figures};

fn main() {
    emit(&figures::table1_hardware(), "table1_hardware");
    emit(&figures::fig01_switch_share(), "fig01_switch_share");
    emit(&figures::fig05_avg_latency(), "fig05_avg_latency");
    emit(&figures::fig06_mem_footprint(), "fig06_mem_footprint");
    for (i, t) in figures::fig11_usage_cdf().iter().enumerate() {
        emit(t, &format!("fig11_usage_cdf_{i}"));
    }
    for (i, t) in figures::fig12_exec_latency().iter().enumerate() {
        emit(t, &format!("fig12_exec_latency_{i}"));
    }
    let (thr, sw) = figures::fig13_14_throughput_and_switches();
    emit(&thr, "fig13_throughput");
    emit(&sw, "fig14_switches");
    let (athr, asw) = figures::fig15_16_ablation();
    emit(&athr, "fig15_ablation_throughput");
    emit(&asw, "fig16_ablation_switches");
    emit(&figures::fig17_executors(), "fig17_executors");
    emit(&figures::fig18_window_search(), "fig18_window_search");
    emit(&figures::fig19_overhead(), "fig19_overhead");
    emit(&figures::fig20_latency_vs_load(), "fig20_latency_vs_load");
    let (cluster, artifacts) = figures::fig21_cluster_scaling();
    emit(&cluster, "fig21_cluster_scaling");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
    let (recovery, artifacts) = figures::fig22_failure_recovery();
    emit(&recovery, "fig22_failure_recovery");
    for (stem, json) in &artifacts {
        emit_json(json, stem);
    }
}
