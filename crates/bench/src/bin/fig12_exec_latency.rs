//! Figure 12: execution latency vs batch size, with fitted K/B.
fn main() {
    for (i, t) in coserve_bench::figures::fig12_exec_latency()
        .iter()
        .enumerate()
    {
        coserve_bench::emit(t, &format!("fig12_exec_latency_{i}"));
    }
}
