//! Figure 18: the decay-window memory-allocation search trace.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig18_window_search(),
        "fig18_window_search",
    );
}
