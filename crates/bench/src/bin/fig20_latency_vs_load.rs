//! Open-loop extension: tail latency and drops vs offered load.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig20_latency_vs_load(),
        "fig20_latency_vs_load",
    );
}
