//! Regenerates every figure while timing each, times the end-to-end
//! engine, and writes the machine-readable perf baseline
//! `BENCH_core.json` next to the figure CSVs.
//!
//! `COSERVE_JOBS` controls the sweep width (artifacts are byte-identical
//! at any width); `COSERVE_SCALE` scales the workload. The committed
//! copy at the workspace root seeds the perf trajectory future PRs are
//! held against.

use coserve_bench::{out_dir, perf_report};

fn main() {
    let report = perf_report::collect(true);
    let json = report.to_json();
    let path = out_dir().join("BENCH_core.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(err) => {
            eprintln!("[json] failed to write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
    println!("\n# Perf baseline (wall-clock)");
    for f in &report.figures {
        println!(
            "  {:<38} {:>10.1} ms  {:>6} rows",
            f.name, f.wall_ms, f.rows
        );
    }
    println!(
        "  {:<38} {:>10.1} ms",
        "all_figures (total)", report.all_figures_wall_ms
    );
    println!(
        "  engine: {} requests in {:.1} ms -> {:.0} requests/s of simulated work (jobs={}, scale={})",
        report.engine.requests,
        report.engine.wall_ms,
        report.engine.requests_per_sec,
        report.jobs,
        report.scale,
    );
}
