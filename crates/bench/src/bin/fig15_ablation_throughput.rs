//! Figure 15: throughput breakdown for each CoServe optimization.
fn main() {
    let (thr, _) = coserve_bench::figures::fig15_16_ablation();
    coserve_bench::emit(&thr, "fig15_ablation_throughput");
}
