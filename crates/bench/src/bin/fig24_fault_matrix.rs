//! Robustness extension: the deterministic fault matrix — fault class
//! × intensity × recovery policy, with `FaultLedger` accounting.
fn main() {
    let (table, artifacts) = coserve_bench::figures::fig24_fault_matrix();
    coserve_bench::emit(&table, "fig24_fault_matrix");
    for (stem, json) in &artifacts {
        coserve_bench::emit_json(json, stem);
    }
}
