//! Figure 5: average inference latency vs batch size.
fn main() {
    coserve_bench::emit(
        &coserve_bench::figures::fig05_avg_latency(),
        "fig05_avg_latency",
    );
}
