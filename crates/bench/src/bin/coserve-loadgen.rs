//! The `coserve-loadgen` binary: a wire client that drives a running
//! `coserve-server` in closed- or open-loop mode and reports latency
//! percentiles — the measurement companion to the network front-end.
//!
//! ```text
//! coserve-loadgen --addr HOST:PORT [--admin-addr HOST:PORT]
//!                 [--task a1|a2|b1|b2] [--scale F] [--requests N]
//!                 [--mode closed|open] [--rate RPS] [--seed S]
//!                 [--retry-budget N] [--verify] [--trace-summary]
//!                 [--shutdown]
//! ```
//!
//! * **closed** (default): one request in flight — submit, pump, poll,
//!   repeat. Arrivals are realized by completions, the paper's
//!   closed-loop regime. With `--verify` the realized schedule is
//!   replayed through the in-process batch facade and the per-request
//!   latencies are required to match bit for bit.
//! * **open**: arrivals are pre-sampled (the task's paper schedule, or
//!   a Poisson process at `--rate` via
//!   `coserve_workload::arrivals::ArrivalProcess`) and submitted
//!   up-front regardless of completions.
//!
//! A server armed with `--busy-limit` sheds excess submits with a
//! typed `Busy`/retry-after answer. The generator honours it with a
//! retry budget: each busy answer backs off exponentially from the
//! server's `retry_after` hint (pumping the engine forward so the
//! backlog actually drains) and resubmits, giving up only once
//! `--retry-budget` attempts are spent — a given-up request is counted
//! as shed, not an error.
//!
//! `--trace-summary` drains the server's admin `/trace` dump after the
//! run and prints the per-stage latency-attribution table (mean/p95
//! for queue, switch, stall and exec) — the server must be running
//! with `--trace`, otherwise the dump is empty and the summary says
//! so. `--shutdown` asks the server's admin port to shut down
//! afterwards — the CI smoke test uses this for a clean end-to-end
//! pass.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use coserve_core::prelude::*;
use coserve_metrics::stats::Summary;
use coserve_model::devices;
use coserve_server::prelude::*;
use coserve_server::server::Client;
use coserve_sim::time::{SimSpan, SimTime};
use coserve_workload::arrivals::ArrivalProcess;
use coserve_workload::stream::{Job, RequestStream, StreamOrder};
use coserve_workload::task::TaskSpec;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

struct Args {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    task: String,
    scale: f64,
    requests: Option<usize>,
    mode: Mode,
    rate: Option<f64>,
    seed: u64,
    retry_budget: u32,
    verify: bool,
    trace_summary: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7600".parse().expect("literal addr"),
        admin_addr: None,
        task: "a1".to_string(),
        scale: 1.0,
        requests: None,
        mode: Mode::Closed,
        rate: None,
        seed: 7,
        retry_budget: 8,
        verify: false,
        trace_summary: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => {
                args.addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("bad --addr: {e}"))?;
            }
            "--admin-addr" => {
                args.admin_addr = Some(
                    value("--admin-addr")?
                        .parse()
                        .map_err(|e| format!("bad --admin-addr: {e}"))?,
                );
            }
            "--task" => args.task = value("--task")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if !(args.scale > 0.0 && args.scale.is_finite()) {
                    return Err("--scale must be positive and finite".into());
                }
            }
            "--requests" => {
                args.requests = Some(
                    value("--requests")?
                        .parse()
                        .map_err(|e| format!("bad --requests: {e}"))?,
                );
            }
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => return Err(format!("unknown mode {other} (expected closed|open)")),
                };
            }
            "--rate" => {
                args.rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|e| format!("bad --rate: {e}"))?,
                );
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--retry-budget" => {
                args.retry_budget = value("--retry-budget")?
                    .parse()
                    .map_err(|e| format!("bad --retry-budget: {e}"))?;
            }
            "--verify" => args.verify = true,
            "--trace-summary" => args.trace_summary = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                return Err(
                    "usage: coserve-loadgen --addr A [--admin-addr A] [--task a1|a2|b1|b2] \
                     [--scale F] [--requests N] [--mode closed|open] [--rate RPS] [--seed S] \
                     [--retry-budget N] [--verify] [--trace-summary] [--shutdown]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn task_spec(name: &str, scale: f64) -> Result<TaskSpec, String> {
    let task = match name {
        "a1" => TaskSpec::a1(),
        "a2" => TaskSpec::a2(),
        "b1" => TaskSpec::b1(),
        "b2" => TaskSpec::b2(),
        other => return Err(format!("unknown task {other} (expected a1|a2|b1|b2)")),
    };
    Ok(if (scale - 1.0).abs() < 1e-9 {
        task
    } else {
        task.scaled(scale)
    })
}

/// Builds the request stream the generator will push: the task's paper
/// schedule, re-timed by a Poisson process when `--rate` is given.
fn build_stream(task: &TaskSpec, args: &Args) -> RequestStream {
    let model = task.build_model().expect("built-in boards validate");
    let mut stream = match args.rate {
        Some(rate) => RequestStream::generate_open_loop(
            format!("{} poisson {rate}rps", task.name()),
            task.board(),
            &model,
            args.requests.unwrap_or_else(|| task.num_requests()),
            ArrivalProcess::poisson(rate),
            StreamOrder::Iid,
            args.seed,
        ),
        None => task.stream(&model),
    };
    if let Some(n) = args.requests {
        stream = stream.truncated(n);
    }
    stream
}

/// Busy-retry accounting for one run.
#[derive(Debug, Default)]
struct RetryStats {
    /// Busy answers that were retried after a backoff.
    busy_retries: u64,
    /// Submits abandoned with the retry budget exhausted.
    gave_up: u64,
}

/// One admitted job id, or `None` when the retry budget ran out.
fn submit(
    client: &mut Client,
    arrival: SimTime,
    stages: &[coserve_model::expert::ExpertId],
    budget: u32,
    stats: &mut RetryStats,
) -> Result<Option<u32>, String> {
    let mut attempt = 0u32;
    loop {
        let resp = client
            .call(&Request::Submit {
                arrival,
                stages: stages.to_vec(),
            })
            .map_err(|e| format!("submit failed: {e}"))?;
        match resp {
            Response::Submit { job } => return Ok(Some(job)),
            Response::Busy { retry_after } => {
                if attempt >= budget {
                    stats.gave_up += 1;
                    return Ok(None);
                }
                // Exponential backoff from the server's hint, realized
                // on the simulated clock: pump the engine forward by
                // the wait so the backlog actually drains.
                let wait = SimSpan::from_nanos(
                    retry_after.nanos().saturating_mul(1u64 << attempt.min(20)),
                );
                let now = pump_until(client, SimTime::ZERO)?.0;
                pump_until(client, now + wait)?;
                stats.busy_retries += 1;
                attempt += 1;
            }
            other => return Err(format!("unexpected submit response: {other:?}")),
        }
    }
}

/// Pumps the engine up to `limit` (a `limit` already in the past just
/// reads the clock back).
fn pump_until(client: &mut Client, limit: SimTime) -> Result<(SimTime, u32), String> {
    let resp = client
        .call(&Request::Pump { limit: Some(limit) })
        .map_err(|e| format!("pump failed: {e}"))?;
    match resp {
        Response::Pump { now, pending, .. } => Ok((now, pending)),
        other => Err(format!("unexpected pump response: {other:?}")),
    }
}

fn pump(client: &mut Client) -> Result<(SimTime, u32), String> {
    let resp = client
        .call(&Request::Pump { limit: None })
        .map_err(|e| format!("pump failed: {e}"))?;
    match resp {
        Response::Pump { now, pending, .. } => Ok((now, pending)),
        other => Err(format!("unexpected pump response: {other:?}")),
    }
}

fn poll(client: &mut Client) -> Result<Vec<WireCompletion>, String> {
    let resp = client
        .call(&Request::Poll)
        .map_err(|e| format!("poll failed: {e}"))?;
    match resp {
        Response::Poll { completions } => Ok(completions),
        other => Err(format!("unexpected poll response: {other:?}")),
    }
}

/// Closed loop: one request in flight, arrivals realized by
/// completions. Returns the completions and the realized schedule.
fn run_closed(
    client: &mut Client,
    stream: &RequestStream,
    budget: u32,
    stats: &mut RetryStats,
) -> Result<(Vec<WireCompletion>, Vec<Job>), String> {
    let mut completions = Vec::with_capacity(stream.len());
    let mut realized = Vec::with_capacity(stream.len());
    let mut now = SimTime::ZERO;
    for job in stream.jobs() {
        // Submitting at ZERO lets the server floor the arrival to the
        // engine's current time — i.e. "the moment the previous
        // request finished", which is what closed loop means.
        if submit(client, SimTime::ZERO, &job.stages, budget, stats)?.is_none() {
            continue;
        }
        realized.push(Job {
            arrival: now,
            ..job.clone()
        });
        let (after, pending) = pump(client)?;
        if pending != 0 {
            return Err(format!("{pending} events pending after a full pump"));
        }
        now = after;
        completions.extend(poll(client)?);
    }
    Ok((completions, realized))
}

/// Open loop: the whole schedule is submitted up-front, then drained.
fn run_open(
    client: &mut Client,
    stream: &RequestStream,
    budget: u32,
    stats: &mut RetryStats,
) -> Result<Vec<WireCompletion>, String> {
    for job in stream.jobs() {
        submit(client, job.arrival, &job.stages, budget, stats)?;
    }
    let (_, pending) = pump(client)?;
    if pending != 0 {
        return Err(format!("{pending} events pending after a full pump"));
    }
    poll(client)
}

/// Replays the realized closed-loop schedule through the in-process
/// batch facade and checks the wire latencies are bit-identical.
fn verify_closed(
    task: &TaskSpec,
    realized: Vec<Job>,
    wire: &[WireCompletion],
) -> Result<(), String> {
    let device = devices::numa_rtx3080ti();
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config)
        .map_err(|e| format!("cannot build verification system: {e}"))?;
    let replay = RequestStream::from_jobs("realized closed loop", realized);
    let batch = system.serve(&replay);
    let mut batch_latencies = batch.job_latencies.clone();
    batch_latencies.sort_unstable();
    let mut wire_latencies: Vec<SimSpan> = wire.iter().map(|c| c.latency).collect();
    wire_latencies.sort_unstable();
    if wire_latencies == batch_latencies {
        println!(
            "verify: OK — {} wire latencies bit-identical to batch serve",
            wire_latencies.len()
        );
        Ok(())
    } else {
        Err(format!(
            "verify: MISMATCH — wire {:?}… vs batch {:?}…",
            wire_latencies.first(),
            batch_latencies.first()
        ))
    }
}

fn admin_get(admin: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(admin).map_err(|e| format!("admin connect failed: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").map_err(|e| e.to_string())?;
    let mut out = String::new();
    stream
        .read_to_string(&mut out)
        .map_err(|e| format!("admin read failed: {e}"))?;
    Ok(out)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let task = task_spec(&args.task, args.scale)?;
    let stream = build_stream(&task, &args);
    println!(
        "loadgen: {} mode, task {}, {} requests against {}",
        match args.mode {
            Mode::Closed => "closed-loop",
            Mode::Open => "open-loop",
        },
        task.name(),
        stream.len(),
        args.addr,
    );

    let mut client = Client::connect(args.addr).map_err(|e| format!("connect failed: {e}"))?;
    let hello = client
        .call(&Request::Hello)
        .map_err(|e| format!("hello failed: {e}"))?;
    let Response::Hello {
        conn,
        num_experts,
        system,
    } = hello
    else {
        return Err(format!("unexpected hello response: {hello:?}"));
    };
    println!("connected: conn {conn}, system {system}, {num_experts} experts");

    let mut retry_stats = RetryStats::default();
    let (completions, realized) = match args.mode {
        Mode::Closed => {
            let (completions, realized) =
                run_closed(&mut client, &stream, args.retry_budget, &mut retry_stats)?;
            (completions, Some(realized))
        }
        Mode::Open => (
            run_open(&mut client, &stream, args.retry_budget, &mut retry_stats)?,
            None,
        ),
    };

    let completed = completions
        .iter()
        .filter(|c| c.status == coserve_core::engine::CompletionStatus::Completed)
        .count();
    println!(
        "done: {} completions ({} completed, {} other)",
        completions.len(),
        completed,
        completions.len() - completed,
    );
    let latencies: Vec<SimSpan> = completions.iter().map(|c| c.latency).collect();
    if let Some(summary) = Summary::of_spans(&latencies) {
        println!(
            "latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
            summary.p50, summary.p95, summary.p99, summary.max,
        );
    }
    if retry_stats.busy_retries > 0 || retry_stats.gave_up > 0 {
        println!(
            "busy backoff: {} retries, {} requests gave up (budget {})",
            retry_stats.busy_retries, retry_stats.gave_up, args.retry_budget,
        );
    }
    let admitted = stream.len() - retry_stats.gave_up as usize;
    if completions.len() != admitted {
        return Err(format!(
            "lost jobs: admitted {admitted} but got {} completions",
            completions.len()
        ));
    }

    if args.verify {
        match realized {
            Some(realized) => verify_closed(&task, realized, &completions)?,
            None => println!("verify: skipped (only meaningful in closed-loop mode)"),
        }
    }

    client
        .call(&Request::Finish)
        .map_err(|e| format!("finish failed: {e}"))?;

    if let Some(admin) = args.admin_addr {
        let stats = admin_get(admin, "/stats")?;
        let body = stats.split("\r\n\r\n").nth(1).unwrap_or("");
        println!("admin stats: {body}");
        if args.trace_summary {
            print_trace_summary(admin)?;
        }
        if args.shutdown {
            let bye = admin_get(admin, "/shutdown")?;
            if !bye.starts_with("HTTP/1.0 200") {
                return Err(format!("shutdown not acknowledged: {bye}"));
            }
            println!("server shutdown acknowledged");
        }
    } else if args.shutdown {
        return Err("--shutdown needs --admin-addr".into());
    } else if args.trace_summary {
        return Err("--trace-summary needs --admin-addr".into());
    }
    Ok(())
}

/// Drains the server's `/trace` dump and prints the latency
/// attribution (mean/p95 per stage component) rebuilt from its
/// `stage-done` records.
fn print_trace_summary(admin: SocketAddr) -> Result<(), String> {
    let dump = admin_get(admin, "/trace")?;
    let body = dump.split("\r\n\r\n").nth(1).unwrap_or("");
    let events = coserve_trace::parse_chrome_stage_done(body);
    if events.is_empty() {
        println!("trace summary: no stage-done events (is the server running with --trace?)");
        return Ok(());
    }
    let attribution = coserve_metrics::attribution::LatencyAttribution::from_events(&events);
    print!("{}", attribution.table().render());
    // The dump only carries stage-done records here, so of the heat
    // summary only the execution counts are meaningful — print the
    // hottest experts as one line instead of the full residency table.
    let heat = coserve_metrics::attribution::ExpertHeat::from_events(&events);
    let hottest: Vec<String> = heat
        .rows()
        .iter()
        .take(10)
        .map(|r| format!("e{}×{}", r.expert.index(), r.stages))
        .collect();
    println!("hottest experts: {}", hottest.join("  "));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
