//! Event-calendar engine scaling: weak-scaling fleets serving tens of
//! millions of requests in wall-clock seconds.
fn main() {
    let (table, artifacts) = coserve_bench::figures::fig23_engine_scale();
    coserve_bench::emit(&table, "fig23_engine_scale");
    for (stem, json) in &artifacts {
        coserve_bench::emit_json(json, stem);
    }
}
