//! One function per paper table/figure.
//!
//! Every function returns the [`Table`]s that regenerate the artifact;
//! the `fig*` binaries and `all_figures` print them and write CSVs.
//! Paper-reported reference bands are asserted in
//! `tests/figures_smoke.rs`; `PAPER.md` at the workspace root
//! summarizes the source paper.
//!
//! The sweep figures (fig13–fig22) fan their independent points out
//! over [`crate::sweep::run_ordered`] worker threads and reassemble
//! rows in canonical order, so the emitted artifacts are byte-identical
//! to a serial run at any `COSERVE_JOBS` width (pinned by
//! `tests/parallel_figures.rs`).

use std::time::Instant;

use coserve_cluster::dispatch::{FeedbackMode, RoutePolicy};
use coserve_cluster::placement::PlacementStrategy;
use coserve_cluster::runtime::{FailureSchedule, ReplacementPolicy, RuntimeOptions};
use coserve_cluster::{ClusterOptions, ClusterSystem};
use coserve_core::autotune::{window_search, UsageCdf, WindowSearchOptions};
use coserve_core::config::AdmissionControl;
use coserve_core::engine::Engine;
use coserve_core::presets;
use coserve_core::profiler::Profiler;
use coserve_core::system::ServingSystem;
use coserve_faults::{FaultPlan, FaultWindow, RetryPolicy};
use coserve_metrics::cluster::ClusterReport;
use coserve_metrics::faults::FaultLedger;
use coserve_metrics::report::json_f64;
use coserve_metrics::table::{fmt_f64, Table};
use coserve_model::arch::{ArchSpec, RESNET101};
use coserve_sim::device::ProcessorKind;
use coserve_sim::network::LinkProfile;
use coserve_sim::time::{SimSpan, SimTime};
use coserve_sim::transfer::TransferRoute;
use coserve_workload::arrivals::ArrivalProcess;
use coserve_workload::stream::{RequestStream, StreamOrder};

use crate::{paper_devices, paper_tasks, scale, Bench};

/// Table 1: hardware for evaluation.
#[must_use]
pub fn table1_hardware() -> Table {
    let mut t = Table::new(
        "Table 1: Hardware for evaluation",
        &["field", "NUMA", "UMA"],
    );
    let devices = paper_devices();
    let (numa, uma) = (&devices[0], &devices[1]);
    t.row(vec![
        "GPU".into(),
        "NVIDIA RTX3080Ti".into(),
        "Apple M2".into(),
    ]);
    t.row(vec![
        "CPU".into(),
        "Intel Xeon Silver 4214R".into(),
        "Apple M2".into(),
    ]);
    t.row(vec![
        "GPU Memory".into(),
        format!("{}", numa.gpu_memory()),
        format!("{}", uma.gpu_memory()),
    ]);
    t.row(vec![
        "CPU Memory".into(),
        format!("{}", numa.cpu_memory()),
        format!("{}", uma.cpu_memory()),
    ]);
    t.row(vec![
        "SSD".into(),
        numa.ssd_name().to_string(),
        uma.ssd_name().to_string(),
    ]);
    t
}

/// Figure 1: proportion of expert-switching latency vs execution
/// latency for batch-1 GPU inference, per device, I/O path and
/// architecture.
#[must_use]
pub fn fig01_switch_share() -> Table {
    let mut t = Table::new(
        "Figure 1: Expert switching latency share of total inference latency (%)",
        &[
            "device",
            "path",
            "arch",
            "switch_ms",
            "exec_ms",
            "switch_share_pct",
        ],
    );
    for device in paper_devices() {
        for route in [TransferRoute::CpuToGpu, TransferRoute::SsdToGpu] {
            for arch in ArchSpec::paper_set() {
                let kernel = device
                    .kernel(arch.id(), ProcessorKind::Gpu)
                    .expect("paper devices have all kernels");
                let exec_ms = kernel.latency.latency_ms(1);
                let switch_ms = device
                    .transfer_duration(arch.weights(), route)
                    .as_millis_f64();
                let share = 100.0 * switch_ms / (switch_ms + exec_ms);
                t.row(vec![
                    device.name().to_string(),
                    route.to_string(),
                    arch.name().to_string(),
                    fmt_f64(switch_ms, 1),
                    fmt_f64(exec_ms, 1),
                    fmt_f64(share, 1),
                ]);
            }
        }
    }
    t
}

/// Figure 5: average (per-request) inference latency vs batch size on
/// GPU and CPU of both devices (ResNet101, profiled microbenchmark).
#[must_use]
pub fn fig05_avg_latency() -> Table {
    let mut t = Table::new(
        "Figure 5: Average inference latency vs batch size (ResNet101, ms)",
        &["device", "processor", "batch", "avg_latency_ms"],
    );
    let profiler = Profiler::with_defaults();
    for device in paper_devices() {
        for proc in ProcessorKind::ALL {
            for p in profiler.sweep(&device, RESNET101, proc) {
                t.row(vec![
                    device.name().to_string(),
                    proc.to_string(),
                    p.batch.to_string(),
                    fmt_f64(p.latency_ms / f64::from(p.batch), 2),
                ]);
            }
        }
    }
    t
}

/// Figure 6: memory footprint vs batch size (ResNet101).
#[must_use]
pub fn fig06_mem_footprint() -> Table {
    let mut t = Table::new(
        "Figure 6: Memory footprint vs batch size (ResNet101, GiB)",
        &["device", "processor", "batch", "footprint_gib"],
    );
    let profiler = Profiler::with_defaults();
    for device in paper_devices() {
        for proc in ProcessorKind::ALL {
            for p in profiler.sweep(&device, RESNET101, proc) {
                t.row(vec![
                    device.name().to_string(),
                    proc.to_string(),
                    p.batch.to_string(),
                    fmt_f64(p.footprint.as_gib_f64(), 3),
                ]);
            }
        }
    }
    t
}

/// Figure 11: the expert-usage CDF for Circuit Board A, plus the window
/// the decay search selects on the NUMA device.
#[must_use]
pub fn fig11_usage_cdf() -> Vec<Table> {
    let bench = Bench::prepare(paper_devices().remove(0), paper_tasks().remove(0));
    let cdf = UsageCdf::from_perf(&bench.perf);
    let mut t = Table::new(
        "Figure 11: CDF of expert usage (Circuit Board A)",
        &["experts", "cdf"],
    );
    let step = (cdf.len() / 40).max(1);
    for k in (step..=cdf.len()).step_by(step) {
        t.row(vec![k.to_string(), fmt_f64(cdf.coverage(k), 4)]);
    }
    let base = presets::coserve(&bench.device);
    let result = window_search(
        &bench.device,
        &bench.model,
        &bench.perf,
        &base,
        &bench.sample,
        WindowSearchOptions::default(),
    );
    let mut sel = Table::new(
        "Figure 11 (annotation): selected expert loading number",
        &["window_lo", "window_hi", "chosen", "cdf_at_chosen"],
    );
    sel.row(vec![
        result.selected.0.to_string(),
        result.selected.1.to_string(),
        result.chosen.to_string(),
        fmt_f64(cdf.coverage(result.chosen), 3),
    ]);
    vec![t, sel]
}

/// Figure 12: execution latency vs batch size with the fitted `K`/`B`
/// coefficients the scheduler uses.
#[must_use]
pub fn fig12_exec_latency() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 12: Execution latency vs batch size (ms)",
        &["device", "processor", "arch", "batch", "latency_ms"],
    );
    let mut fits = Table::new(
        "Figure 12 (annotation): fitted K and B per architecture/processor",
        &[
            "device",
            "processor",
            "arch",
            "K_ms",
            "B_ms",
            "r2",
            "max_batch",
        ],
    );
    let profiler = Profiler::with_defaults();
    for device in paper_devices() {
        for arch in [ArchSpec::resnet101(), ArchSpec::yolov5m()] {
            for proc in ProcessorKind::ALL {
                let points = profiler.sweep(&device, arch.id(), proc);
                for p in &points {
                    t.row(vec![
                        device.name().to_string(),
                        proc.to_string(),
                        arch.name().to_string(),
                        p.batch.to_string(),
                        fmt_f64(p.latency_ms, 2),
                    ]);
                }
                let max_batch = profiler.max_batch(&points);
                let (k, b, r2) = profiler.fit_kb(&points, max_batch);
                fits.row(vec![
                    device.name().to_string(),
                    proc.to_string(),
                    arch.name().to_string(),
                    fmt_f64(k, 2),
                    fmt_f64(b, 2),
                    fmt_f64(r2, 4),
                    max_batch.to_string(),
                ]);
            }
        }
    }
    vec![t, fits]
}

/// Figures 13 and 14: throughput and expert-switch counts for the five
/// evaluation systems across tasks and devices.
#[must_use]
pub fn fig13_14_throughput_and_switches() -> (Table, Table) {
    let mut thr = Table::new(
        "Figure 13: Throughput of CoServe and baselines (img/s)",
        &["device", "task", "system", "throughput", "speedup_vs_samba"],
    );
    let mut sw = Table::new(
        "Figure 14: Number of expert switches",
        &[
            "device",
            "task",
            "system",
            "switches",
            "from_ssd",
            "from_cache",
            "reduction_vs_samba_pct",
        ],
    );
    let cells: Vec<_> = paper_devices()
        .into_iter()
        .flat_map(|device| {
            paper_tasks()
                .into_iter()
                .map(move |task| (device.clone(), task))
        })
        .collect();
    let results = crate::sweep::run_ordered(cells, |(device, task)| {
        let bench = Bench::prepare(device.clone(), task.clone());
        let (reports, _) = bench.run_suite();
        (device, task, reports)
    });
    for (device, task, reports) in results {
        let samba_thr = reports[0].throughput_ips();
        let samba_sw = reports[0].expert_switches();
        for r in &reports {
            let speedup = if samba_thr > 0.0 {
                r.throughput_ips() / samba_thr
            } else {
                0.0
            };
            thr.row(vec![
                device.name().to_string(),
                task.name().to_string(),
                r.system.clone(),
                fmt_f64(r.throughput_ips(), 1),
                fmt_f64(speedup, 2),
            ]);
            let reduction = if samba_sw > 0 {
                100.0 * (1.0 - r.expert_switches() as f64 / samba_sw as f64)
            } else {
                0.0
            };
            sw.row(vec![
                device.name().to_string(),
                task.name().to_string(),
                r.system.clone(),
                r.expert_switches().to_string(),
                r.switches_from_ssd().to_string(),
                r.switches_from_cpu().to_string(),
                fmt_f64(reduction, 1),
            ]);
        }
    }
    (thr, sw)
}

/// Figures 15 and 16: the ablation ladder (None → EM → EM+RA → full
/// CoServe), throughput and switch counts.
#[must_use]
pub fn fig15_16_ablation() -> (Table, Table) {
    let mut thr = Table::new(
        "Figure 15: Throughput breakdown per optimization (img/s)",
        &["device", "task", "system", "throughput"],
    );
    let mut sw = Table::new(
        "Figure 16: Expert switches per optimization",
        &["device", "task", "system", "switches"],
    );
    let cells: Vec<_> = paper_devices()
        .into_iter()
        .flat_map(|device| {
            paper_tasks()
                .into_iter()
                .map(move |task| (device.clone(), task))
        })
        .collect();
    let results = crate::sweep::run_ordered(cells, |(device, task)| {
        let bench = Bench::prepare(device.clone(), task.clone());
        let reports: Vec<_> = presets::ablation_ladder(&device)
            .into_iter()
            .map(|config| bench.run(&config))
            .collect();
        (device, task, reports)
    });
    for (device, task, reports) in results {
        for r in reports {
            thr.row(vec![
                device.name().to_string(),
                task.name().to_string(),
                r.system.clone(),
                fmt_f64(r.throughput_ips(), 1),
            ]);
            sw.row(vec![
                device.name().to_string(),
                task.name().to_string(),
                r.system.clone(),
                r.expert_switches().to_string(),
            ]);
        }
    }
    (thr, sw)
}

/// Figure 17: throughput under different executor counts, measured on
/// the offline samples of tasks A and B.
#[must_use]
pub fn fig17_executors() -> Table {
    let mut t = Table::new(
        "Figure 17: Throughput under different numbers of executors (img/s)",
        &["device", "measurement", "config", "throughput"],
    );
    let candidates: Vec<(usize, usize)> =
        vec![(1, 1), (2, 1), (3, 1), (4, 1), (5, 1), (3, 2), (4, 2)];
    let cells: Vec<_> = paper_devices()
        .into_iter()
        .flat_map(|device| {
            [paper_tasks().remove(0), paper_tasks().remove(2)]
                .into_iter()
                .map(move |task| (device.clone(), task))
        })
        .collect();
    let results = crate::sweep::run_ordered(cells, |(device, task)| {
        let bench = Bench::prepare(device.clone(), task.clone());
        let trials = coserve_core::autotune::executor_search(
            &device,
            &bench.model,
            &bench.perf,
            &candidates,
            &bench.sample,
        );
        (device, task, trials)
    });
    for (device, task, trials) in results {
        let label = if task.name().contains('A') {
            "Measurement A"
        } else {
            "Measurement B"
        };
        for tr in &trials {
            t.row(vec![
                device.name().to_string(),
                label.to_string(),
                format!("{}G+{}C", tr.gpus, tr.cpus),
                fmt_f64(tr.throughput, 1),
            ]);
        }
    }
    t
}

/// Figure 18: the decay-window search trace on the NUMA GPU for both
/// measurement workloads.
#[must_use]
pub fn fig18_window_search() -> Table {
    let mut t = Table::new(
        "Figure 18: Throughput at window boundaries during the sliding-window search",
        &["measurement", "trial", "residents", "throughput", "note"],
    );
    let device = paper_devices().remove(0);
    let tasks = vec![paper_tasks().remove(0), paper_tasks().remove(2)];
    let results = crate::sweep::run_ordered(tasks, |task| {
        let bench = Bench::prepare(device.clone(), task.clone());
        let base = presets::coserve(&device);
        let result = window_search(
            &device,
            &bench.model,
            &bench.perf,
            &base,
            &bench.sample,
            WindowSearchOptions::default(),
        );
        (task, result)
    });
    for (task, result) in results {
        let label = if task.name().contains('A') {
            "Measurement A"
        } else {
            "Measurement B"
        };
        for (i, trial) in result.trials.iter().enumerate() {
            t.row(vec![
                label.to_string(),
                (i + 1).to_string(),
                trial.residents.to_string(),
                fmt_f64(trial.throughput, 1),
                String::new(),
            ]);
        }
        t.row(vec![
            label.to_string(),
            "-".into(),
            format!("{}..{}", result.selected.0, result.selected.1),
            fmt_f64(result.deviation * 100.0, 1),
            format!("selected range; chosen {} (deviation %)", result.chosen),
        ]);
    }
    t
}

/// Open-loop extension figure: tail latency and drop rate vs offered
/// load (Poisson arrivals) for CoServe and the Samba-CoE baselines, all
/// pushed through the same bounded-queue admission harness. This is the
/// latency-vs-load curve open-loop serving comparisons (SN40L, CoMoE)
/// report and the paper's closed evaluation cannot produce.
#[must_use]
pub fn fig20_latency_vs_load() -> Table {
    let mut t = Table::new(
        "Figure 20 (extension): Tail latency and drops vs offered load (Poisson, NUMA)",
        &[
            "system",
            "offered_rps",
            "p50_ms",
            "p90_ms",
            "p95_ms",
            "p99_ms",
            "drop_pct",
            "goodput_ips",
        ],
    );
    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let model = task.build_model().expect("built-in boards validate");
    let perf = Profiler::with_defaults().profile(
        &device,
        &model,
        coserve_core::profiler::UsageSource::Declared,
    );
    // Floor high enough that the arrival volume can overflow the
    // bounded queues even at smoke-test scales — the overload leg of
    // the curve must show nonzero drops.
    let requests = ((800.0 * scale()).round() as usize).max(300);
    let systems = [
        presets::coserve(&device),
        coserve_baselines::samba::samba_coe(&device),
        coserve_baselines::samba::samba_coe_parallel(&device),
    ];
    // Every (load level, system) point is an independent run: the
    // arrival schedule depends only on the load level and the seed, so
    // regenerating it per point changes nothing.
    let points: Vec<(f64, usize)> = [100.0, 250.0, 500.0, 1_000.0]
        .into_iter()
        .flat_map(|rps| (0..systems.len()).map(move |s| (rps, s)))
        .collect();
    let rows = crate::sweep::run_ordered(points, |(rps, sys_idx)| {
        let stream = RequestStream::generate_open_loop(
            format!("open-loop poisson {rps}/s"),
            task.board(),
            &model,
            requests,
            ArrivalProcess::poisson(rps),
            StreamOrder::Iid,
            7,
        );
        let mut config = systems[sys_idx].clone();
        config.admission = Some(AdmissionControl::default());
        config.max_overtake = Some(presets::ONLINE_MAX_OVERTAKE);
        let report = Engine::new(&device, &model, &perf, &config)
            .expect("harness configs are valid")
            .run(&stream);
        let lat = report.latency_summary();
        let fmt_lat = |f: fn(&coserve_metrics::stats::Summary) -> f64| {
            lat.as_ref()
                .map_or_else(|| "-".into(), |s| fmt_f64(f(s), 1))
        };
        vec![
            config.name,
            fmt_f64(rps, 0),
            fmt_lat(|s| s.p50),
            fmt_lat(|s| s.p90),
            fmt_lat(|s| s.p95),
            fmt_lat(|s| s.p99),
            fmt_f64(100.0 * report.drop_rate(), 1),
            fmt_f64(report.throughput_ips(), 1),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Cluster extension figure: throughput, drops and cross-node hops as
/// the fleet scales out, swept over placement strategy × routing
/// policy under the A1 task at overload. The single-node row is the
/// baseline every speedup compares against.
///
/// Returns the table plus machine-readable JSON artifacts (the
/// single-node `RunReport` and the 4-node usage-aware/residency-first
/// `ClusterReport`), emitted as `.json` files by the figure binaries.
#[must_use]
pub fn fig21_cluster_scaling() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "Figure 21 (extension): Cluster scaling — throughput and cross-node hops (A1, overload)",
        &[
            "nodes",
            "placement",
            "route",
            "offered_rps",
            "throughput_ips",
            "speedup_vs_1node",
            "drop_pct",
            "cross_hops",
            "hops_per_req",
            "p95_ms",
        ],
    );
    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    // Overload: the offered rate far exceeds one node's capacity, and
    // shallow admission queues force the single node to shed load while
    // a 4-node fleet absorbs it — the scaling headroom the figure plots.
    let rps = 4_000.0;
    let requests = ((1_000.0 * scale()).round() as usize).max(250);
    let stream = RequestStream::generate_open_loop(
        format!("{} open-loop poisson {rps}/s", task.name()),
        task.board(),
        &model,
        requests,
        ArrivalProcess::poisson(rps),
        StreamOrder::Iid,
        7,
    );
    let admission = AdmissionControl::with_queue_capacity(16);

    let run = |nodes: usize, placement: PlacementStrategy, route: RoutePolicy| -> ClusterReport {
        let options = ClusterOptions::default().placement(placement).route(route);
        let cluster = ClusterSystem::homogeneous(
            nodes,
            &device,
            &config,
            &model,
            LinkProfile::ethernet_10g(),
            options,
        )
        .expect("harness clusters are valid");
        cluster.serve_with_online(&stream, admission, presets::ONLINE_MAX_OVERTAKE)
    };
    let mut row =
        |r: &ClusterReport, placement: PlacementStrategy, route: RoutePolicy, base: f64| {
            let p95 = r
                .latency_summary()
                .map_or_else(|| "-".into(), |s| fmt_f64(s.p95, 1));
            let speedup = if base > 0.0 {
                r.throughput_ips() / base
            } else {
                0.0
            };
            t.row(vec![
                r.num_nodes().to_string(),
                placement.to_string(),
                route.to_string(),
                fmt_f64(rps, 0),
                fmt_f64(r.throughput_ips(), 1),
                fmt_f64(speedup, 2),
                fmt_f64(100.0 * r.drop_rate(), 1),
                r.cross_node_hops.to_string(),
                fmt_f64(r.hops_per_request(), 3),
                p95,
            ]);
        };

    let mut artifacts = Vec::new();
    // Canonical cell order: the 1-node baseline, the 2-node placement
    // sweep under default routing, then the full 4-node placement ×
    // routing matrix. Every cell is an independent deterministic run,
    // fanned out over the sweep workers and reassembled in this order.
    let mut cells: Vec<(usize, PlacementStrategy, RoutePolicy)> = vec![(
        1,
        PlacementStrategy::UsageAware,
        RoutePolicy::ResidencyFirst,
    )];
    for placement in PlacementStrategy::ALL {
        cells.push((2, placement, RoutePolicy::ResidencyFirst));
    }
    for placement in PlacementStrategy::ALL {
        for route in RoutePolicy::ALL {
            cells.push((4, placement, route));
        }
    }
    let reports = crate::sweep::run_ordered(cells.clone(), |(nodes, placement, route)| {
        run(nodes, placement, route)
    });
    let base_thr = reports[0].throughput_ips();
    artifacts.push((
        "fig21_single_node_report".to_string(),
        reports[0].nodes[0].to_json(),
    ));
    for ((nodes, placement, route), r) in cells.into_iter().zip(&reports) {
        if nodes == 4
            && placement == PlacementStrategy::UsageAware
            && route == RoutePolicy::ResidencyFirst
        {
            artifacts.push(("fig21_cluster_report".to_string(), r.to_json()));
        }
        row(r, placement, route, base_thr);
    }
    (t, artifacts)
}

/// Failure-recovery extension figure: the dynamic cluster runtime under
/// injected node failures and usage drift. Sweeps failure timing ×
/// re-placement policy × dispatcher feedback on a 4-node fleet serving
/// a *drifted* stream (the observed class mix is the declared one
/// rotated by half the components, so the offline plan's usage basis is
/// wrong from the first request). Two claims the smoke tests pin:
///
/// 1. re-replication bounds recovery (finite `recovery_ms`, migration
///    traffic charged to the fabric, zero orphan rejections) while a
///    static placement rejects orphaned chains for the rest of the run
///    — its orphan-drop rate never recovers;
/// 2. under the drifted workload, feedback-corrected dispatch beats the
///    open-loop estimates on p95 latency in the post-failure regime
///    (the re-replicate rows): migration receivers are genuinely
///    slower than the offline predictions claim, and only the
///    corrected estimates stop overloading them. The failure-free
///    drift-only rows show the flip side — with no structural
///    asymmetry to learn, open-loop's optimistic estimates happen to
///    preserve batching locality and feedback buys estimate accuracy
///    instead of tail latency.
///
/// Returns the table plus a machine-readable `ClusterReport` JSON
/// artifact of the recovered (re-replicating, feedback-on) mid-run-kill
/// cell.
#[must_use]
pub fn fig22_failure_recovery() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "Figure 22 (extension): Failure recovery and feedback under drifted usage (A1, 4 nodes)",
        &[
            "scenario",
            "replacement",
            "feedback",
            "throughput_ips",
            "drop_pct",
            "orphan_drop_pct",
            "recovery_ms",
            "migration_mib",
            "p95_ms",
            "est_err_ms",
            "slo_attain_pct",
        ],
    );
    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    // The drift: classes are drawn from the board with its quantity
    // profile rotated by half the component types, against the model
    // (and placement plan) built from the declared profile.
    let drifted = task.board().drifted(task.board().num_components() / 2);
    let requests = ((900.0 * scale()).round() as usize).max(300);
    // Near-capacity load (not deep saturation): routing quality, not
    // raw capacity, decides the tail — the regime where corrected
    // estimates can beat open-loop ones.
    let rps = 200.0;
    let stream = RequestStream::generate_open_loop(
        format!("{} drifted poisson {rps}/s", task.name()),
        &drifted,
        &model,
        requests,
        ArrivalProcess::poisson(rps),
        StreamOrder::Iid,
        7,
    );
    let horizon = stream.last_arrival().saturating_since(SimTime::ZERO);
    let tick = SimSpan::from_millis_f64((horizon.as_millis_f64() / 12.0).max(1.0));
    let at = |pct: u32| {
        SimTime::ZERO + SimSpan::from_millis_f64(horizon.as_millis_f64() * f64::from(pct) / 100.0)
    };
    let admission = AdmissionControl::with_queue_capacity(16);

    // Canonical cell order: the failure matrix (kill node 1 at 25 % or
    // 50 % of the horizon × static/re-replicate × open-loop/feedback),
    // then the failure-free drift-only feedback comparison.
    #[derive(Clone, Copy)]
    struct Cell {
        kill_pct: Option<u32>,
        replacement: ReplacementPolicy,
        feedback: FeedbackMode,
    }
    let mut cells = Vec::new();
    for kill_pct in [25u32, 50] {
        for replacement in [ReplacementPolicy::Static, ReplacementPolicy::OnFailure] {
            for feedback in [FeedbackMode::OpenLoop, FeedbackMode::Corrected] {
                cells.push(Cell {
                    kill_pct: Some(kill_pct),
                    replacement,
                    feedback,
                });
            }
        }
    }
    for feedback in [FeedbackMode::OpenLoop, FeedbackMode::Corrected] {
        cells.push(Cell {
            kill_pct: None,
            replacement: ReplacementPolicy::OnFailure,
            feedback,
        });
    }

    let slo = SimSpan::from_millis(250);
    let reports = crate::sweep::run_ordered(cells.clone(), |cell| {
        // Least-loaded routing: the work-left estimate *is* the routing
        // signal, so estimate quality (open-loop vs corrected) shows up
        // directly in the tail.
        let cluster = ClusterSystem::homogeneous(
            4,
            &device,
            &config,
            &model,
            LinkProfile::ethernet_10g(),
            ClusterOptions::default().route(RoutePolicy::LeastLoaded),
        )
        .expect("harness clusters are valid");
        let failures = match cell.kill_pct {
            Some(pct) => FailureSchedule::new().kill(1, at(pct)),
            None => FailureSchedule::new(),
        };
        let options = RuntimeOptions::default()
            .tick(tick)
            .failures(failures)
            .replacement(cell.replacement)
            .feedback(cell.feedback)
            .slo(slo)
            .online(admission, presets::ONLINE_MAX_OVERTAKE);
        cluster.serve_runtime(&stream, &options)
    });

    let mut artifacts = Vec::new();
    for (cell, r) in cells.iter().zip(&reports) {
        let scenario = match cell.kill_pct {
            Some(pct) => format!("kill@{pct}%"),
            None => "drift-only".to_string(),
        };
        if cell.kill_pct == Some(50)
            && cell.replacement == ReplacementPolicy::OnFailure
            && cell.feedback == FeedbackMode::Corrected
        {
            artifacts.push(("fig22_failure_recovery_report".to_string(), r.to_json()));
        }
        let recovery = if r.has_unrecovered_failure() {
            "inf".to_string()
        } else {
            r.recovery_time()
                .map_or_else(|| "-".into(), |s| fmt_f64(s.as_millis_f64(), 1))
        };
        let p95 = r
            .latency_summary()
            .map_or_else(|| "-".into(), |s| fmt_f64(s.p95, 1));
        let est_err = r
            .dynamics
            .estimate_error_ms
            .map_or_else(|| "-".into(), |e| fmt_f64(e, 1));
        let attain = r
            .slo_attainment(slo)
            .map_or_else(|| "-".into(), |a| fmt_f64(100.0 * a, 1));
        let orphan_pct = if r.submitted > 0 {
            100.0 * r.dynamics.routing_dropped as f64 / r.submitted as f64
        } else {
            0.0
        };
        t.row(vec![
            scenario,
            cell.replacement.to_string(),
            cell.feedback.to_string(),
            fmt_f64(r.throughput_ips(), 1),
            fmt_f64(100.0 * r.drop_rate(), 1),
            fmt_f64(orphan_pct, 1),
            recovery,
            fmt_f64(r.dynamics.migration_bytes.as_mib_f64(), 1),
            p95,
            est_err,
            attain,
        ]);
    }
    (t, artifacts)
}

/// Figure 23 (extension): event-calendar engine scaling. Weak-scaling
/// fleets of independent engine sessions (1, 8 and 64 nodes, a fixed
/// per-node request count) are served end to end, so the 64-node row
/// simulates the service of over ten million requests at full scale —
/// in wall-clock seconds, because the calendar core pays per *event*,
/// never per tick.
///
/// Each node streams its open-loop arrival trace through
/// [`coserve_core::engine::EngineSession::pump_until`] in chunks, the
/// live-service idiom, rather than submitting everything up front; the
/// chunked interleaving is contractually identical to a one-shot run.
///
/// The CSV holds only simulation-deterministic columns, so it is
/// byte-identical at any sweep width (pinned by
/// `tests/parallel_figures.rs`). The wall-clock measurements — the
/// point of the figure, but machine-dependent by nature, like
/// `BENCH_core.json` — go into the JSON artifact.
#[must_use]
pub fn fig23_engine_scale() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "Figure 23 (extension): Event-calendar engine scaling — weak-scaling fleets (A1, NUMA)",
        &[
            "nodes",
            "requests",
            "completed",
            "stages",
            "events",
            "makespan_s",
            "sim_rps",
        ],
    );
    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config).expect("harness systems are valid");
    // 64 nodes × 160 k requests = 10.24 M simulated requests at full
    // scale. Open-loop Poisson arrivals safely below single-node
    // capacity keep queues bounded, so wall-clock cost scales with the
    // request count, not with backlog length.
    let per_node = ((160_000.0 * scale()).round() as usize).max(500);
    let rate = 200.0;
    const CHUNK: usize = 4096;

    let mut fleet_rows = Vec::new();
    for nodes in [1usize, 8, 64] {
        let started = Instant::now();
        let node_stats = crate::sweep::run_ordered((0..nodes).collect::<Vec<_>>(), |node| {
            let stream = RequestStream::generate_open_loop(
                format!("{} node {node}", task.name()),
                task.board(),
                system.model(),
                per_node,
                ArrivalProcess::poisson(rate),
                StreamOrder::Iid,
                0x23_0000 + node as u64,
            );
            let mut session = system.session(stream.name());
            let jobs = stream.jobs();
            let mut events = 0usize;
            let mut start = 0;
            while start < jobs.len() {
                let end = (start + CHUNK).min(jobs.len());
                for job in &jobs[start..end] {
                    session
                        .submit(job.arrival, &job.stages)
                        .expect("stream jobs reference experts of the engine's model");
                }
                if end < jobs.len() {
                    events += session.pump_until(jobs[end].arrival);
                    let _ = session.drain_completions();
                }
                start = end;
            }
            events += session.pump();
            let _ = session.drain_completions();
            (session.snapshot(), events)
        });
        let wall = started.elapsed().as_secs_f64();

        let requests: usize = node_stats.iter().map(|(s, _)| s.submitted).sum();
        let completed: usize = node_stats.iter().map(|(s, _)| s.completed).sum();
        let stages: usize = node_stats.iter().map(|(s, _)| s.stages_executed).sum();
        let events: usize = node_stats.iter().map(|(_, e)| e).sum();
        // The fleet is done when its slowest node is done.
        let makespan = node_stats
            .iter()
            .map(|(s, _)| s.makespan)
            .max()
            .unwrap_or(SimSpan::ZERO);
        let sim_rps = if makespan.as_secs_f64() > 0.0 {
            completed as f64 / makespan.as_secs_f64()
        } else {
            0.0
        };
        t.row(vec![
            nodes.to_string(),
            requests.to_string(),
            completed.to_string(),
            stages.to_string(),
            events.to_string(),
            fmt_f64(makespan.as_secs_f64(), 2),
            fmt_f64(sim_rps, 1),
        ]);
        fleet_rows.push(format!(
            "{{\"nodes\":{nodes},\"requests\":{requests},\"wall_ms\":{},\"wall_rps\":{}}}",
            json_f64(wall * 1e3),
            json_f64(if wall > 0.0 {
                requests as f64 / wall
            } else {
                0.0
            }),
        ));
    }
    let artifact = format!(
        "{{\"schema_version\":1,\"scale\":{},\"per_node_requests\":{per_node},\"fleets\":[{}]}}",
        json_f64(scale()),
        fleet_rows.join(","),
    );
    (t, vec![("fig23_engine_scale_wall".to_string(), artifact)])
}

/// Figure 24 (extension): the deterministic fault matrix — fault class
/// × intensity × recovery policy, with the `FaultLedger` partitioning
/// the damage. Four classes: `load` (expert loads fail in the engine;
/// recovery = bounded retry with exponential backoff), `link` (fabric
/// dilation and partitions; recovery = hedged re-route vs local-reload
/// degradation), `node` (control-tick service dilation; absorbed),
/// `conn` (server sheds submits with a typed Busy/retry-after answer;
/// recovery = the client's retry budget). Every fault is scheduled on
/// the simulated clock from a fixed seed, so the matrix is
/// reproducible bit for bit.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn fig24_fault_matrix() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "Figure 24 (extension): Fault matrix — class × intensity × recovery (A1)",
        &[
            "fault",
            "intensity",
            "recovery",
            "goodput_ips",
            "injected",
            "retries",
            "recovered",
            "lost",
            "overhead_ms",
            "recovery_ms",
            "p95_ms",
        ],
    );
    let requests = ((240.0 * scale()).round() as usize).max(80);
    let recovery_cell = |l: &FaultLedger| match l.recovery_span() {
        Some(s) => fmt_f64(s.as_millis_f64(), 1),
        None if l.injected() > 0 => "inf".to_string(),
        None => "-".to_string(),
    };
    let overhead_ms =
        |l: &FaultLedger| (l.wasted_time + l.backoff_time + l.degraded_time).as_millis_f64();
    let p95_cell = |s: Option<coserve_metrics::stats::Summary>| {
        s.map_or_else(|| "-".into(), |s| fmt_f64(s.p95, 1))
    };
    let mut artifacts = Vec::new();

    // ── load: expert-load failures in the engine pool path ──────────
    let run_load = |fail_rate: f64, retry: RetryPolicy| {
        let device = paper_devices().remove(0);
        let task = paper_tasks().remove(0);
        let model = task.build_model().expect("built-in boards validate");
        let config = presets::coserve(&device);
        let system = ServingSystem::new(device, model, config).expect("harness systems are valid");
        let stream = task.stream(system.model()).truncated(requests);
        let mut session = system.session("CoServe");
        session.set_faults(
            FaultPlan::seeded(24).with_expert_load(fail_rate, 0.0, 1.0, FaultWindow::ALWAYS),
            retry,
        );
        for job in stream.jobs() {
            let _ = session.submit(job.arrival, &job.stages);
        }
        session.pump();
        let ledger = *session.fault_ledger();
        (session.into_report(), ledger)
    };
    let retry_policy = RetryPolicy::retries(16, SimSpan::from_micros(50));
    for (intensity, fail_rate) in [("fail 10%", 0.10), ("fail 30%", 0.30)] {
        let cells = [
            ("none", RetryPolicy::none()),
            ("retry+backoff", retry_policy),
        ]
        .map(|(recovery, policy)| (recovery, run_load(fail_rate, policy)));
        // Goodput over a common horizon: a run that failed jobs also
        // finished early, so completions-per-own-makespan would
        // flatter giving up.
        let span = cells
            .iter()
            .map(|(_, (r, _))| r.makespan)
            .max()
            .unwrap_or(SimSpan::ZERO)
            .as_secs_f64();
        for (recovery, (r, ledger)) in cells {
            if fail_rate > 0.2 && recovery != "none" {
                artifacts.push((
                    "fig24_fault_matrix_load_retry_ledger".to_string(),
                    ledger.to_json(),
                ));
            }
            let goodput = if span > 0.0 {
                r.completed as f64 / span
            } else {
                0.0
            };
            t.row(vec![
                "load".into(),
                intensity.into(),
                recovery.into(),
                fmt_f64(goodput, 1),
                ledger.injected().to_string(),
                ledger.retries.to_string(),
                ledger.recovered().to_string(),
                r.failed.to_string(),
                fmt_f64(overhead_ms(&ledger), 1),
                recovery_cell(&ledger),
                p95_cell(r.latency_summary()),
            ]);
        }
    }

    // ── link + node: fabric and cluster-runtime faults ──────────────
    let cluster_stream = {
        let task = paper_tasks().remove(0);
        let model = task.build_model().expect("built-in boards validate");
        RequestStream::generate_open_loop(
            format!("{} poisson 150/s", task.name()),
            task.board(),
            &model,
            requests,
            ArrivalProcess::poisson(150.0),
            StreamOrder::Iid,
            7,
        )
    };
    let horizon = cluster_stream
        .last_arrival()
        .saturating_since(SimTime::ZERO);
    let tick = SimSpan::from_millis_f64((horizon.as_millis_f64() / 12.0).max(1.0));
    let run_cluster = |plan: FaultPlan, hedge: bool| {
        let device = paper_devices().remove(0);
        let task = paper_tasks().remove(0);
        let model = task.build_model().expect("built-in boards validate");
        let config = presets::coserve(&device);
        // Sharded placement + round-robin routing: chain stages
        // routinely pull activations across the fabric, and jobs land
        // on nodes regardless of residency — link faults sit on the
        // critical path and a cut-off target has reachable
        // alternatives for hedging.
        let cluster = ClusterSystem::homogeneous(
            4,
            &device,
            &config,
            &model,
            LinkProfile::ethernet_10g(),
            ClusterOptions::default()
                .placement(PlacementStrategy::Sharded)
                .route(RoutePolicy::RoundRobin),
        )
        .expect("harness clusters are valid");
        let options = RuntimeOptions::default()
            .tick(tick)
            .faults(plan)
            .hedge(hedge);
        cluster.serve_runtime(&cluster_stream, &options)
    };
    let all_links_from_zero = vec![(0, 1), (0, 2), (0, 3)];
    let link_cells: [(&str, FaultPlan, bool); 3] = [
        (
            "dilate x4",
            FaultPlan::seeded(24).with_link(0.5, 4.0, Vec::new(), FaultWindow::ALWAYS),
            false,
        ),
        (
            "partition",
            FaultPlan::seeded(24).with_link(
                0.0,
                1.0,
                all_links_from_zero.clone(),
                FaultWindow::ALWAYS,
            ),
            false,
        ),
        (
            "partition",
            FaultPlan::seeded(24).with_link(0.0, 1.0, all_links_from_zero, FaultWindow::ALWAYS),
            true,
        ),
    ];
    for (intensity, plan, hedge) in link_cells {
        let r = run_cluster(plan, hedge);
        let ledger = r.dynamics.faults;
        if hedge {
            artifacts.push((
                "fig24_fault_matrix_partition_hedge_report".to_string(),
                r.to_json(),
            ));
        }
        t.row(vec![
            "link".into(),
            intensity.into(),
            if hedge { "hedge" } else { "degrade" }.into(),
            fmt_f64(r.throughput_ips(), 1),
            ledger.injected().to_string(),
            ledger.retries.to_string(),
            ledger.recovered().to_string(),
            (r.submitted - r.completed).to_string(),
            fmt_f64(overhead_ms(&ledger), 1),
            recovery_cell(&ledger),
            p95_cell(r.latency_summary()),
        ]);
    }
    for (intensity, factor) in [("slow x2", 2.0), ("slow x6", 6.0)] {
        let plan = FaultPlan::seeded(24).with_slow_nodes(vec![0], factor, FaultWindow::ALWAYS);
        let r = run_cluster(plan, true);
        let ledger = r.dynamics.faults;
        t.row(vec![
            "node".into(),
            intensity.into(),
            "absorb".into(),
            fmt_f64(r.throughput_ips(), 1),
            ledger.injected().to_string(),
            ledger.retries.to_string(),
            ledger.recovered().to_string(),
            (r.submitted - r.completed).to_string(),
            fmt_f64(overhead_ms(&ledger), 1),
            recovery_cell(&ledger),
            p95_cell(r.latency_summary()),
        ]);
    }

    // ── conn: server-side busy shedding vs client retry budget ──────
    for (intensity, limit) in [("limit 4", 4usize), ("limit 16", 16usize)] {
        let cells = [("none", 0u32), ("retry+backoff", 10)]
            .map(|(recovery, budget)| (recovery, run_conn_cell(requests, limit, budget)));
        let span = cells
            .iter()
            .map(|(_, (r, _, _))| r.makespan)
            .max()
            .unwrap_or(SimSpan::ZERO)
            .as_secs_f64();
        for (recovery, (r, ledger, gave_up)) in cells {
            if limit == 4 && recovery != "none" {
                artifacts.push((
                    "fig24_fault_matrix_conn_retry_ledger".to_string(),
                    ledger.to_json(),
                ));
            }
            let goodput = if span > 0.0 {
                r.completed as f64 / span
            } else {
                0.0
            };
            let retried = ledger.busy_shed - gave_up;
            t.row(vec![
                "conn".into(),
                intensity.into(),
                recovery.into(),
                fmt_f64(goodput, 1),
                ledger.injected().to_string(),
                retried.to_string(),
                retried.to_string(),
                gave_up.to_string(),
                fmt_f64(overhead_ms(&ledger), 1),
                recovery_cell(&ledger),
                p95_cell(r.latency_summary()),
            ]);
        }
    }
    (t, artifacts)
}

/// One `conn` cell of [`fig24_fault_matrix`]: an in-process
/// [`ServiceCore`] armed with a busy limit, driven open-loop by a
/// client that retries busy answers with an exponential backoff (or
/// gives up immediately when `budget` is zero).
fn run_conn_cell(
    requests: usize,
    limit: usize,
    budget: u32,
) -> (coserve_metrics::report::RunReport, FaultLedger, u64) {
    use coserve_server::protocol::{Request, Response};
    use coserve_server::service::ServiceCore;

    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let model = task.build_model().expect("built-in boards validate");
    let config = presets::coserve(&device);
    let system = ServingSystem::new(device, model, config).expect("harness systems are valid");
    let stream = task.stream(system.model()).truncated(requests);
    let core = ServiceCore::new(system.session("CoServe"), system.model().num_experts());
    // A retry-after hint in the same order as one request's service
    // time: ten doubling backoffs from here give the backlog seconds
    // to drain before the client gives up.
    core.set_busy_limit(limit, SimSpan::from_millis(5));

    let mut conn = None;
    core.handle(&mut conn, Request::Hello);
    let pump_now = |conn: &mut Option<u32>, until: SimTime| -> SimTime {
        match core.handle(conn, Request::Pump { limit: Some(until) }) {
            Response::Pump { now, .. } => now,
            other => panic!("pump answered {other:?}"),
        }
    };
    let mut gave_up = 0u64;
    for job in stream.jobs() {
        let mut attempt = 0u32;
        loop {
            let resp = core.handle(
                &mut conn,
                Request::Submit {
                    arrival: job.arrival,
                    stages: job.stages.clone(),
                },
            );
            match resp {
                Response::Submit { .. } => break,
                Response::Busy { retry_after } => {
                    if attempt >= budget {
                        gave_up += 1;
                        break;
                    }
                    let wait = SimSpan::from_nanos(
                        retry_after.nanos().saturating_mul(1u64 << attempt.min(20)),
                    );
                    let now = pump_now(&mut conn, SimTime::ZERO);
                    pump_now(&mut conn, now + wait);
                    attempt += 1;
                }
                other => panic!("submit answered {other:?}"),
            }
        }
    }
    core.handle(&mut conn, Request::Pump { limit: None });
    let ledger = core.fault_ledger();
    (core.into_report(), ledger, gave_up)
}

/// Figure 19: scheduling latency vs inference latency, and the
/// pre-scheduled comparison quantifying scheduling overhead.
#[must_use]
pub fn fig19_overhead() -> Table {
    let mut t = Table::new(
        "Figure 19: Request scheduling vs inference latency (per request, ms)",
        &[
            "device",
            "task",
            "scheduling_ms",
            "inference_ms",
            "presched_inference_ms",
            "throughput_gap_pct",
        ],
    );
    // The paper reports tasks A2 and B2.
    let cells: Vec<_> = paper_devices()
        .into_iter()
        .flat_map(|device| {
            [paper_tasks().remove(1), paper_tasks().remove(3)]
                .into_iter()
                .map(move |task| (device.clone(), task))
        })
        .collect();
    let results = crate::sweep::run_ordered(cells, |(device, task)| {
        let bench = Bench::prepare(device.clone(), task.clone());
        let config = presets::coserve(&device);
        let with_sched = bench.run(&config);
        let pre = bench.run(&config.pre_scheduled());
        (device, task, with_sched, pre)
    });
    for (device, task, with_sched, pre) in results {
        let sched_ms = with_sched.sched_summary().map_or(0.0, |s| s.mean);
        let gap = if pre.throughput_ips() > 0.0 {
            100.0 * (pre.throughput_ips() - with_sched.throughput_ips()).abs()
                / pre.throughput_ips()
        } else {
            0.0
        };
        t.row(vec![
            device.name().to_string(),
            task.name().to_string(),
            fmt_f64(sched_ms, 1),
            fmt_f64(with_sched.mean_exec_latency_ms(), 1),
            fmt_f64(pre.mean_exec_latency_ms(), 1),
            fmt_f64(gap, 1),
        ]);
    }
    t
}
