//! The tracked perf baseline: `BENCH_core.json`.
//!
//! [`collect`] regenerates every paper figure (like the `all_figures`
//! binary) while timing each one, then times the serving engine end to
//! end (wall-clock requests/sec of simulated work), and packages the
//! measurements as a machine-readable JSON report. The `bench_report`
//! binary writes it next to the figure CSVs as `BENCH_core.json`; a
//! copy committed at the workspace root seeds the perf trajectory each
//! PR is held against.
//!
//! Timings are wall-clock and therefore machine-dependent; the report
//! records the sweep width (`COSERVE_JOBS`) and workload scale
//! (`COSERVE_SCALE`) alongside so runs are comparable.

use std::time::Instant;

use coserve_core::presets;
use coserve_metrics::report::{json_f64, json_str};

use crate::{emit, emit_json, figures, paper_devices, paper_tasks, scale, sweep, Bench};

/// Schema version of `BENCH_core.json`; bump on breaking layout
/// changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Wall-clock timing of one regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTiming {
    /// The artifact stem (e.g. `fig13_throughput`).
    pub name: String,
    /// Wall-clock milliseconds to compute the figure (excluding
    /// printing/CSV writes).
    pub wall_ms: f64,
    /// Data rows produced across the figure's tables.
    pub rows: usize,
}

/// Wall-clock throughput of the serving engine itself.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineTiming {
    /// Device the run simulated.
    pub device: String,
    /// Task the run served.
    pub task: String,
    /// Requests submitted.
    pub requests: usize,
    /// Stages executed (each is one scheduled batch slot).
    pub stages: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Requests of simulated work processed per wall-clock second.
    pub requests_per_sec: f64,
}

/// The complete perf baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Workload scale factor the run used.
    pub scale: f64,
    /// Sweep width the run used.
    pub jobs: usize,
    /// Per-figure wall-clock timings, in emission order.
    pub figures: Vec<FigureTiming>,
    /// Wall-clock milliseconds for the full figure suite.
    pub all_figures_wall_ms: f64,
    /// End-to-end engine throughput measurement.
    pub engine: EngineTiming,
}

impl PerfReport {
    /// Renders the report as JSON (hand-rolled like the metrics crate's
    /// serializers; no dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let figures: Vec<String> = self
            .figures
            .iter()
            .map(|f| {
                format!(
                    "{{\"name\":{},\"wall_ms\":{},\"rows\":{}}}",
                    json_str(&f.name),
                    json_f64(f.wall_ms),
                    f.rows,
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":{},\"scale\":{},\"jobs\":{},\
             \"all_figures_wall_ms\":{},\"figures\":[{}],\
             \"engine\":{{\"device\":{},\"task\":{},\"requests\":{},\
             \"stages\":{},\"wall_ms\":{},\"requests_per_sec\":{}}}}}",
            SCHEMA_VERSION,
            json_f64(self.scale),
            self.jobs,
            json_f64(self.all_figures_wall_ms),
            figures.join(","),
            json_str(&self.engine.device),
            json_str(&self.engine.task),
            self.engine.requests,
            self.engine.stages,
            json_f64(self.engine.wall_ms),
            json_f64(self.engine.requests_per_sec),
        )
    }
}

/// Regenerates every figure (emitting tables, CSVs and JSON artifacts
/// exactly like `all_figures` when `emit_artifacts` is set) while
/// timing each, then times an end-to-end engine run, and returns the
/// assembled [`PerfReport`].
#[must_use]
pub fn collect(emit_artifacts: bool) -> PerfReport {
    let mut figures = Vec::new();
    let suite_start = Instant::now();
    let mut record =
        |name: &str, started: Instant, tables: Vec<(String, coserve_metrics::table::Table)>| {
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let rows = tables.iter().map(|(_, t)| t.len()).sum();
            if emit_artifacts {
                for (stem, table) in &tables {
                    emit(table, stem);
                }
            }
            figures.push(FigureTiming {
                name: name.to_string(),
                wall_ms,
                rows,
            });
        };

    let one = |stem: &str, t: coserve_metrics::table::Table| vec![(stem.to_string(), t)];

    let s = Instant::now();
    record(
        "table1_hardware",
        s,
        one("table1_hardware", figures::table1_hardware()),
    );
    let s = Instant::now();
    record(
        "fig01_switch_share",
        s,
        one("fig01_switch_share", figures::fig01_switch_share()),
    );
    let s = Instant::now();
    record(
        "fig05_avg_latency",
        s,
        one("fig05_avg_latency", figures::fig05_avg_latency()),
    );
    let s = Instant::now();
    record(
        "fig06_mem_footprint",
        s,
        one("fig06_mem_footprint", figures::fig06_mem_footprint()),
    );
    let s = Instant::now();
    let t11 = figures::fig11_usage_cdf();
    record(
        "fig11_usage_cdf",
        s,
        t11.into_iter()
            .enumerate()
            .map(|(i, t)| (format!("fig11_usage_cdf_{i}"), t))
            .collect(),
    );
    let s = Instant::now();
    let t12 = figures::fig12_exec_latency();
    record(
        "fig12_exec_latency",
        s,
        t12.into_iter()
            .enumerate()
            .map(|(i, t)| (format!("fig12_exec_latency_{i}"), t))
            .collect(),
    );
    let s = Instant::now();
    let (thr, sw) = figures::fig13_14_throughput_and_switches();
    record(
        "fig13_14_throughput_and_switches",
        s,
        vec![
            ("fig13_throughput".to_string(), thr),
            ("fig14_switches".to_string(), sw),
        ],
    );
    let s = Instant::now();
    let (athr, asw) = figures::fig15_16_ablation();
    record(
        "fig15_16_ablation",
        s,
        vec![
            ("fig15_ablation_throughput".to_string(), athr),
            ("fig16_ablation_switches".to_string(), asw),
        ],
    );
    let s = Instant::now();
    record(
        "fig17_executors",
        s,
        one("fig17_executors", figures::fig17_executors()),
    );
    let s = Instant::now();
    record(
        "fig18_window_search",
        s,
        one("fig18_window_search", figures::fig18_window_search()),
    );
    let s = Instant::now();
    record(
        "fig19_overhead",
        s,
        one("fig19_overhead", figures::fig19_overhead()),
    );
    let s = Instant::now();
    record(
        "fig20_latency_vs_load",
        s,
        one("fig20_latency_vs_load", figures::fig20_latency_vs_load()),
    );
    let s = Instant::now();
    let (cluster, artifacts) = figures::fig21_cluster_scaling();
    record(
        "fig21_cluster_scaling",
        s,
        one("fig21_cluster_scaling", cluster),
    );
    if emit_artifacts {
        for (stem, json) in &artifacts {
            emit_json(json, stem);
        }
    }
    let s = Instant::now();
    let (recovery, artifacts) = figures::fig22_failure_recovery();
    record(
        "fig22_failure_recovery",
        s,
        one("fig22_failure_recovery", recovery),
    );
    if emit_artifacts {
        for (stem, json) in &artifacts {
            emit_json(json, stem);
        }
    }
    let s = Instant::now();
    let (engine_scale, artifacts) = figures::fig23_engine_scale();
    record(
        "fig23_engine_scale",
        s,
        one("fig23_engine_scale", engine_scale),
    );
    if emit_artifacts {
        for (stem, json) in &artifacts {
            emit_json(json, stem);
        }
    }
    let s = Instant::now();
    let (faults, artifacts) = figures::fig24_fault_matrix();
    record("fig24_fault_matrix", s, one("fig24_fault_matrix", faults));
    if emit_artifacts {
        for (stem, json) in &artifacts {
            emit_json(json, stem);
        }
    }
    let all_figures_wall_ms = suite_start.elapsed().as_secs_f64() * 1e3;

    // End-to-end engine throughput: the CoServe preset serving the
    // paper's first task on the NUMA device, timed wall-clock.
    let device = paper_devices().remove(0);
    let task = paper_tasks().remove(0);
    let bench = Bench::prepare(device.clone(), task.clone());
    let config = presets::coserve(&device);
    let started = Instant::now();
    let report = bench.run(&config);
    let wall = started.elapsed().as_secs_f64();
    let engine = EngineTiming {
        device: device.name().to_string(),
        task: task.name().to_string(),
        requests: report.submitted,
        stages: report.stages_executed,
        wall_ms: wall * 1e3,
        requests_per_sec: if wall > 0.0 {
            report.submitted as f64 / wall
        } else {
            0.0
        },
    };

    PerfReport {
        scale: scale(),
        jobs: sweep::jobs(),
        figures,
        all_figures_wall_ms,
        engine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            scale: 1.0,
            jobs: 4,
            figures: vec![
                FigureTiming {
                    name: "fig13_14_throughput_and_switches".into(),
                    wall_ms: 123.45,
                    rows: 80,
                },
                FigureTiming {
                    name: "fig21_cluster_scaling".into(),
                    wall_ms: 67.8,
                    rows: 17,
                },
            ],
            all_figures_wall_ms: 191.25,
            engine: EngineTiming {
                device: "NUMA \"quoted\"".into(),
                task: "Task A1".into(),
                requests: 2500,
                stages: 3400,
                wall_ms: 42.0,
                requests_per_sec: 59523.8,
            },
        }
    }

    /// A minimal JSON well-formedness check: balanced braces/brackets
    /// outside strings, and no trailing garbage.
    fn assert_well_formed(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {json}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string in {json}");
        assert_eq!(depth, 0, "unbalanced braces in {json}");
    }

    #[test]
    fn schema_has_required_keys() {
        let json = sample().to_json();
        assert_well_formed(&json);
        for key in [
            "\"schema_version\":1",
            "\"scale\":",
            "\"jobs\":4",
            "\"all_figures_wall_ms\":",
            "\"figures\":[",
            "\"engine\":{",
            "\"requests_per_sec\":",
            "\"wall_ms\":",
            "\"rows\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn json_escapes_strings() {
        let json = sample().to_json();
        assert!(json.contains("NUMA \\\"quoted\\\""));
        assert_well_formed(&json);
    }

    #[test]
    fn non_finite_timings_become_null() {
        let mut r = sample();
        r.engine.requests_per_sec = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("\"requests_per_sec\":null"));
        assert_well_formed(&json);
    }
}
