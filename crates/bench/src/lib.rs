//! # coserve-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! CoServe paper. Each `fig*`/`table*` binary prints the paper-style
//! rows to stdout and writes a CSV into the output directory
//! (`target/figures/` under the workspace root by default,
//! `COSERVE_OUT_DIR` to override). `all_figures` runs the lot.
//!
//! Scaling: the full evaluation (2,500–3,500 requests per task) runs in
//! seconds in release mode; set `COSERVE_SCALE=0.1` to smoke-test the
//! harness quickly (integration tests do).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;

use coserve_baselines::suite::evaluation_suite;
use coserve_core::autotune::{TunedSystem, WindowSearchOptions};
use coserve_core::engine::Engine;
use coserve_core::perf::PerfMatrix;
use coserve_core::profiler::{Profiler, UsageSource};
use coserve_metrics::report::RunReport;
use coserve_metrics::table::Table;
use coserve_model::coe::CoeModel;
use coserve_model::devices;
use coserve_sim::device::DeviceProfile;
use coserve_workload::stream::RequestStream;
use coserve_workload::task::TaskSpec;

/// Where CSV outputs land: `COSERVE_OUT_DIR` when set, otherwise
/// `target/figures/` under the workspace root. The default is anchored to
/// the workspace (not the current working directory) so figure binaries
/// and tests behave the same from any invocation path.
#[must_use]
pub fn out_dir() -> PathBuf {
    coserve_metrics::output::out_dir_anchored(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
}

/// The global workload scale factor (`COSERVE_SCALE`, default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("COSERVE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && s.is_finite())
        .unwrap_or(1.0)
}

/// Number of requests used for offline tuning samples, after scaling.
#[must_use]
pub fn tuning_sample_size() -> usize {
    ((1500.0 * scale()).round() as usize).max(40)
}

/// The two evaluation devices in paper order (NUMA, UMA).
#[must_use]
pub fn paper_devices() -> Vec<DeviceProfile> {
    devices::paper_devices()
}

/// The four evaluation tasks in paper order, scaled by
/// [`scale`].
#[must_use]
pub fn paper_tasks() -> Vec<TaskSpec> {
    TaskSpec::paper_tasks()
        .into_iter()
        .map(|t| {
            if (scale() - 1.0).abs() < 1e-9 {
                t
            } else {
                t.scaled(scale())
            }
        })
        .collect()
}

/// A fully prepared experiment context for one (device, task) cell:
/// model, offline measurements, evaluation stream and tuning sample.
#[derive(Debug, Clone)]
pub struct Bench {
    /// The device under evaluation.
    pub device: DeviceProfile,
    /// The task under evaluation.
    pub task: TaskSpec,
    /// The task's CoE model.
    pub model: CoeModel,
    /// The offline performance matrix.
    pub perf: PerfMatrix,
    /// The full evaluation stream.
    pub stream: RequestStream,
    /// The smaller offline tuning sample.
    pub sample: RequestStream,
}

impl Bench {
    /// Prepares the context: builds the model, runs the offline
    /// profiler, materializes the evaluation stream and the tuning
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics when the board spec fails validation — unreachable for
    /// the built-in tasks.
    #[must_use]
    pub fn prepare(device: DeviceProfile, task: TaskSpec) -> Self {
        let model = task.build_model().expect("built-in boards validate");
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = task.stream(&model);
        let sample = task.sample(tuning_sample_size()).stream(&model);
        Bench {
            device,
            task,
            model,
            perf,
            stream,
            sample,
        }
    }

    /// Runs one configuration on the evaluation stream.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is not servable on this device —
    /// a harness bug, not an input condition.
    #[must_use]
    pub fn run(&self, config: &coserve_core::config::SystemConfig) -> RunReport {
        Engine::new(&self.device, &self.model, &self.perf, config)
            .expect("harness configs are valid")
            .run(&self.stream)
    }

    /// Runs one configuration on the evaluation stream with a ring
    /// tracer installed and returns the report plus the drained trace
    /// events. The report is bit-identical to [`Bench::run`] — the
    /// tracer observes the engine, it never perturbs it.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is not servable on this device —
    /// a harness bug, not an input condition.
    #[must_use]
    pub fn run_traced(
        &self,
        config: &coserve_core::config::SystemConfig,
    ) -> (RunReport, Vec<coserve_trace::TraceEvent>) {
        let engine = Engine::new(&self.device, &self.model, &self.perf, config)
            .expect("harness configs are valid");
        let mut session = engine.session(self.stream.name());
        let _ = session.set_tracer(Box::new(coserve_trace::RingTracer::new()));
        for job in self.stream.jobs() {
            session
                .submit(job.arrival, &job.stages)
                .expect("stream jobs reference experts of the engine's model");
        }
        session.pump();
        let events = session.tracer_mut().drain();
        (session.into_report(), events)
    }

    /// Runs the five-system evaluation suite (Figures 13–14) and
    /// returns the reports in suite order plus the tuning traces.
    #[must_use]
    pub fn run_suite(&self) -> (Vec<RunReport>, TunedSystem) {
        let (systems, tuned) = evaluation_suite(
            &self.device,
            &self.model,
            &self.perf,
            &self.sample,
            WindowSearchOptions::default(),
        );
        let reports = systems.iter().map(|c| self.run(c)).collect();
        (reports, tuned)
    }
}

/// Prints a table and writes its CSV next to the other experiment
/// outputs; the file name gets a `.csv` suffix.
pub fn emit(table: &Table, file_stem: &str) {
    print!("{}", table.render());
    let path = out_dir().join(format!("{file_stem}.csv"));
    // Harness output shared by every figure binary — stdout is the
    // product here, not debug residue.
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}\n", path.display()), // tidy:allow(trace-hygiene)
        Err(err) => eprintln!("[csv] failed to write {}: {err}\n", path.display()), // tidy:allow(trace-hygiene)
    }
}

/// Writes a machine-readable JSON artifact (a `RunReport::to_json()` or
/// `ClusterReport::to_json()` payload) next to the figure CSVs; the
/// file name gets a `.json` suffix.
pub fn emit_json(json: &str, file_stem: &str) {
    let path = out_dir().join(format!("{file_stem}.json"));
    let write = || -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, json)
    };
    // Same as `emit`: the artifact line is the figure binaries' UI.
    match write() {
        Ok(()) => println!("[json] {}\n", path.display()), // tidy:allow(trace-hygiene)
        Err(err) => eprintln!("[json] failed to write {}: {err}\n", path.display()), // tidy:allow(trace-hygiene)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // The test environment may set COSERVE_SCALE; only check sanity.
        assert!(scale() > 0.0);
        assert!(tuning_sample_size() >= 40);
    }

    #[test]
    fn paper_matrix_shape() {
        assert_eq!(paper_devices().len(), 2);
        assert_eq!(paper_tasks().len(), 4);
    }

    #[test]
    fn out_dir_default_is_workspace_anchored() {
        // Other tests in this binary don't set COSERVE_OUT_DIR; when the
        // harness environment does, the override must win verbatim.
        let dir = out_dir();
        match std::env::var_os("COSERVE_OUT_DIR") {
            Some(v) => assert_eq!(dir, PathBuf::from(v)),
            None => {
                assert!(dir.is_absolute(), "default must not depend on CWD");
                assert!(dir.ends_with("target/figures"));
                // The anchor must be the workspace root, not some other
                // ancestor: <root>/Cargo.toml must exist two levels up
                // from <root>/target/figures.
                let root = dir.parent().and_then(|p| p.parent()).unwrap();
                assert!(
                    root.join("Cargo.toml").is_file(),
                    "out_dir() anchored outside the workspace: {}",
                    dir.display()
                );
            }
        }
    }
}
pub mod figures;
pub mod perf_report;
pub mod sweep;
