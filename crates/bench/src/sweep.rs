//! Deterministic parallel sweep runner for the figure harness.
//!
//! Every point in the fig13–fig21 sweeps is an independent,
//! deterministic simulation: the same inputs produce the same rows no
//! matter when or where they run. [`run_ordered`] exploits that by
//! fanning points out over scoped worker threads (`std::thread::scope`,
//! no external dependencies) and reassembling the results **in input
//! order**, so the emitted CSV/JSON artifacts are byte-identical to a
//! serial run — pinned by `tests/parallel_figures.rs`.
//!
//! Width comes from the `COSERVE_JOBS` environment variable (default:
//! the machine's available parallelism). `COSERVE_JOBS=1` forces the
//! serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The sweep width: `COSERVE_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 when unknown).
///
/// Read per call (not cached) so tests can flip the variable between
/// sweeps within one process.
#[must_use]
pub fn jobs() -> usize {
    if let Ok(v) = std::env::var("COSERVE_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `work` over every item, fanning out over [`jobs`] scoped worker
/// threads, and returns the results **in item order** regardless of
/// completion order — the determinism guarantee the figure artifacts
/// rely on.
///
/// Workers claim items from a shared atomic cursor, so uneven point
/// costs balance automatically. A panic in any worker propagates after
/// the scope joins.
pub fn run_ordered<T, R, F>(items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let width = jobs().min(items.len()).max(1);
    if width <= 1 {
        return items.into_iter().map(work).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is claimed once");
                let out = work(item);
                *results[i].lock().expect("result lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("every item produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Uneven per-item cost: later items finish first under any
        // honest parallel schedule, yet the output order must match the
        // input order.
        let items: Vec<u64> = (0..64).collect();
        let out = run_ordered(items.clone(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        let want: Vec<u64> = items.iter().map(|i| i * 10).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn empty_and_single_item_sweeps_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered(empty, |x: u32| x).is_empty());
        assert_eq!(run_ordered(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn jobs_floor_is_one() {
        assert!(jobs() >= 1);
    }
}
