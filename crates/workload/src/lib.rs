//! # coserve-workload
//!
//! Workload generation for the CoServe reproduction: the circuit-board
//! inspection scenario from the paper's evaluation (Boards A/B with
//! 352/342 component types, tasks A1/A2/B1/B2, one image every 4 ms)
//! and a Qihoo-360-style multi-domain LLM scenario from the paper's
//! motivation.
//!
//! All generation is seeded and deterministic, and stage outcomes are
//! pre-rolled into the [`stream::Job`]s so every serving system under
//! comparison processes byte-identical work.
//!
//! ```
//! use coserve_workload::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task = TaskSpec::a1().scaled(0.01); // 25 requests for a demo
//! let model = task.build_model()?;
//! let stream = task.stream(&model);
//! assert_eq!(stream.len(), 25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod board;
pub mod distribution;
pub mod llm;
pub mod stream;
pub mod task;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::arrivals::ArrivalProcess;
    pub use crate::board::{BoardSpec, ComponentSpec, DetectorArch, ParseBoardError};
    pub use crate::distribution::ClassDistribution;
    pub use crate::stream::{Job, JobId, RequestStream, StreamOrder};
    pub use crate::task::{TaskSpec, PAPER_ARRIVAL_INTERVAL};
}

pub use prelude::*;
