//! Circuit-board specifications and CoE model construction.
//!
//! The paper's application is automatic circuit-board quality inspection
//! (§5.1): every component type has a dedicated ResNet101 classification
//! expert; for some components a shared YOLOv5 object-detection expert
//! additionally verifies alignment and soldering direction. Board A has
//! 352 component types, Board B has 342.
//!
//! A [`BoardSpec`] describes the board design — component types, how
//! many instances of each a board carries, which detector group (if
//! any) verifies it — and [`BoardSpec::build_model`] turns that into a
//! [`CoeModel`] with exact pre-assessed usage probabilities.

use coserve_model::arch::{ArchSpec, RESNET101, YOLOV5L, YOLOV5M};
use coserve_model::coe::{CoeModel, ModelError};
use coserve_model::expert::ExpertId;
use coserve_model::routing::{ClassId, RouteRule};
use coserve_sim::device::ArchId;

use crate::distribution::ClassDistribution;

/// Which detection architecture a detector group uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorArch {
    /// A YOLOv5m detector.
    YoloV5m,
    /// A YOLOv5l detector.
    YoloV5l,
}

impl DetectorArch {
    /// The corresponding [`ArchId`].
    #[must_use]
    pub fn arch_id(self) -> ArchId {
        match self {
            DetectorArch::YoloV5m => YOLOV5M,
            DetectorArch::YoloV5l => YOLOV5L,
        }
    }
}

/// One component type on the board.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// The input class this component produces (dense, 0-based).
    pub class: ClassId,
    /// Human-readable name.
    pub name: String,
    /// Instances of this component per board — drives usage probability.
    pub quantity_per_board: f64,
    /// The detector group that verifies this component after its
    /// classification expert finds no defect, if any.
    pub detector_group: Option<u32>,
    /// Probability the classification stage passes (no defect) and the
    /// detection stage therefore runs.
    pub pass_prob: f64,
}

/// A circuit-board design: the workload- and model-defining artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    name: String,
    components: Vec<ComponentSpec>,
    detector_archs: Vec<DetectorArch>,
}

impl BoardSpec {
    /// Creates a board from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty, classes are not the dense
    /// sequence `0..n`, a detector group is out of range, or a pass
    /// probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        components: Vec<ComponentSpec>,
        detector_archs: Vec<DetectorArch>,
    ) -> Self {
        assert!(!components.is_empty(), "board needs at least one component");
        for (i, c) in components.iter().enumerate() {
            assert_eq!(
                c.class,
                ClassId(i as u32),
                "component classes must be dense"
            );
            assert!(
                (0.0..=1.0).contains(&c.pass_prob),
                "pass probability must be in [0,1]"
            );
            assert!(
                c.quantity_per_board > 0.0 && c.quantity_per_board.is_finite(),
                "quantity must be positive"
            );
            if let Some(g) = c.detector_group {
                assert!(
                    (g as usize) < detector_archs.len(),
                    "detector group {g} out of range"
                );
            }
        }
        BoardSpec {
            name: name.into(),
            components,
            detector_archs,
        }
    }

    /// A synthetic board in the style of the paper's workloads.
    ///
    /// * `num_components` component types with Zipf-with-floor
    ///   quantities (`scale · rank^-s`, floored at one per board);
    /// * a fraction `detected_fraction` of component types gets a
    ///   detection follow-up, spread round-robin over `num_detectors`
    ///   shared detector groups (first 2/3 YOLOv5m, rest YOLOv5l);
    /// * pass probabilities around 0.95, varied deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `num_components` or `num_detectors` is zero.
    #[must_use]
    pub fn synthetic(
        name: impl Into<String>,
        num_components: usize,
        num_detectors: usize,
        zipf_s: f64,
        zipf_scale: f64,
        detected_fraction: f64,
    ) -> Self {
        assert!(num_components > 0 && num_detectors > 0);
        let dist = ClassDistribution::zipf_with_floor(num_components, zipf_s, zipf_scale, 1.0);
        let detector_archs: Vec<DetectorArch> = (0..num_detectors)
            .map(|g| {
                if g * 3 < num_detectors * 2 {
                    DetectorArch::YoloV5m
                } else {
                    DetectorArch::YoloV5l
                }
            })
            .collect();
        let mut detected_budget = 0.0f64;
        let components = (0..num_components)
            .map(|i| {
                detected_budget += detected_fraction;
                let detector_group = if detected_budget >= 1.0 {
                    detected_budget -= 1.0;
                    Some((i % num_detectors) as u32)
                } else {
                    None
                };
                ComponentSpec {
                    class: ClassId(i as u32),
                    name: format!("component-{i}"),
                    // Quantities proportional to the Zipf weights; keep
                    // the raw weight (≥ 1 per board).
                    quantity_per_board: (zipf_scale * ((i + 1) as f64).powf(-zipf_s)).max(1.0),
                    detector_group,
                    // Deterministic variation in [0.90, 0.98].
                    pass_prob: 0.90 + 0.08 * ((i * 37 % 100) as f64 / 100.0),
                }
            })
            .collect();
        let _ = dist; // the distribution is recomputed on demand
        BoardSpec::new(name, components, detector_archs)
    }

    /// A usage-drift variant of this board: the same component types
    /// and detector wiring, but with the per-board quantities rotated
    /// by `shift` ranks (component `i` inherits the quantity of
    /// component `(i + shift) mod n`). Streams generated from the
    /// drifted board against the *original* board's model produce the
    /// observed-vs-declared usage divergence online re-placement and
    /// dispatcher-feedback studies need: cold experts run hot while the
    /// plan still believes the declared mix.
    ///
    /// A `shift` of zero (mod `n`) returns an identical board.
    #[must_use]
    pub fn drifted(&self, shift: usize) -> BoardSpec {
        let n = self.components.len();
        let components = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| ComponentSpec {
                quantity_per_board: self.components[(i + shift) % n].quantity_per_board,
                ..c.clone()
            })
            .collect();
        BoardSpec::new(
            format!("{} (drift {shift})", self.name),
            components,
            self.detector_archs.clone(),
        )
    }

    /// The paper's Circuit Board A: 352 component types, 18 shared
    /// detector groups.
    #[must_use]
    pub fn board_a() -> Self {
        BoardSpec::synthetic("Circuit Board A", 352, 18, 1.2, 200.0, 0.6)
    }

    /// The paper's Circuit Board B: 342 component types, 16 shared
    /// detector groups and a slightly flatter quantity distribution.
    #[must_use]
    pub fn board_b() -> Self {
        BoardSpec::synthetic("Circuit Board B", 342, 16, 1.15, 190.0, 0.55)
    }

    /// The board's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Component types on the board.
    #[must_use]
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// Number of component types.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Number of shared detector groups.
    #[must_use]
    pub fn num_detectors(&self) -> usize {
        self.detector_archs.len()
    }

    /// Total component instances on one board.
    #[must_use]
    pub fn instances_per_board(&self) -> f64 {
        self.components.iter().map(|c| c.quantity_per_board).sum()
    }

    /// The class distribution induced by component quantities.
    #[must_use]
    pub fn class_distribution(&self) -> ClassDistribution {
        ClassDistribution::from_weights(
            self.components
                .iter()
                .map(|c| c.quantity_per_board)
                .collect(),
        )
    }

    /// The classification expert id for `class` in the model built by
    /// [`BoardSpec::build_model`]: classification experts occupy ids
    /// `0..num_components` in class order.
    #[must_use]
    pub fn classifier_of(&self, class: ClassId) -> ExpertId {
        ExpertId(class.0)
    }

    /// The detection expert id for detector group `group`: detection
    /// experts follow the classifiers, in group order.
    #[must_use]
    pub fn detector_of(&self, group: u32) -> ExpertId {
        ExpertId(self.components.len() as u32 + group)
    }

    /// Builds the CoE model for this board: one ResNet101 classification
    /// expert per component type, one shared detection expert per
    /// detector group, routing rules with the component pass
    /// probabilities, and exact usage probabilities from the quantity
    /// distribution (§4.5's "calculated directly" case).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from validation (unreachable for specs
    /// constructed through [`BoardSpec::new`]).
    pub fn build_model(&self) -> Result<CoeModel, ModelError> {
        let mut b = CoeModel::builder(self.name.clone());
        b.arch(ArchSpec::resnet101());
        b.arch(ArchSpec::yolov5m());
        b.arch(ArchSpec::yolov5l());
        // Classification experts, ids 0..n in class order.
        for c in &self.components {
            b.expert(format!("cls-{}", c.name), RESNET101, 0.0);
        }
        // Detection experts, ids n..n+g in group order.
        for (g, arch) in self.detector_archs.iter().enumerate() {
            b.expert(format!("det-group-{g}"), arch.arch_id(), 0.0);
        }
        for c in &self.components {
            let cls_expert = self.classifier_of(c.class);
            let rule = match c.detector_group {
                Some(g) => RouteRule::with_follow_up(cls_expert, self.detector_of(g), c.pass_prob),
                None => RouteRule::single(cls_expert),
            };
            b.rule(c.class, rule);
        }
        let mut model = b.build()?;
        let num_experts = model.num_experts();
        let usage = model
            .routing()
            .usage_probabilities(&self.class_distribution().class_probs(), num_experts);
        model.set_usage_probs(&usage);
        Ok(model)
    }
}

/// Error from parsing a board CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBoardError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseBoardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "board csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBoardError {}

impl BoardSpec {
    /// Parses a board from CSV text with the header
    /// `name,quantity_per_board,detector_group,detector_arch,pass_prob`.
    ///
    /// `detector_group`/`detector_arch` may be empty for components
    /// without a detection stage; `detector_arch` is `yolov5m` or
    /// `yolov5l` and must be consistent within a group. Classes are
    /// assigned densely in row order — this is how a deployment turns
    /// its real component list (the paper's "users can specify which
    /// components are inspected by which experts", §4.5) into a
    /// servable spec.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBoardError`] for malformed rows, inconsistent
    /// detector architectures, or an empty table.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<BoardSpec, ParseBoardError> {
        let mut components = Vec::new();
        let mut group_archs: std::collections::BTreeMap<u32, DetectorArch> =
            std::collections::BTreeMap::new();
        let mut rows = csv.lines().enumerate();
        // Header row is mandatory.
        let Some((_, header)) = rows.next() else {
            return Err(ParseBoardError {
                line: 1,
                message: "missing header".into(),
            });
        };
        if header.trim() != "name,quantity_per_board,detector_group,detector_arch,pass_prob" {
            return Err(ParseBoardError {
                line: 1,
                message: format!("unexpected header {header:?}"),
            });
        }
        for (idx, row) in rows {
            let line = idx + 1;
            let row = row.trim();
            if row.is_empty() {
                continue;
            }
            let cells: Vec<&str> = row.split(',').map(str::trim).collect();
            if cells.len() != 5 {
                return Err(ParseBoardError {
                    line,
                    message: format!("expected 5 cells, found {}", cells.len()),
                });
            }
            let quantity: f64 = cells[1].parse().map_err(|e| ParseBoardError {
                line,
                message: format!("bad quantity {:?}: {e}", cells[1]),
            })?;
            let pass_prob: f64 = cells[4].parse().map_err(|e| ParseBoardError {
                line,
                message: format!("bad pass probability {:?}: {e}", cells[4]),
            })?;
            if !(0.0..=1.0).contains(&pass_prob) {
                return Err(ParseBoardError {
                    line,
                    message: format!("pass probability {pass_prob} outside [0,1]"),
                });
            }
            if quantity <= 0.0 || !quantity.is_finite() {
                return Err(ParseBoardError {
                    line,
                    message: format!("quantity {quantity} must be positive"),
                });
            }
            let detector_group = match (cells[2], cells[3]) {
                ("", "") => None,
                (g, a) => {
                    let group: u32 = g.parse().map_err(|e| ParseBoardError {
                        line,
                        message: format!("bad detector group {g:?}: {e}"),
                    })?;
                    let arch = match a.to_ascii_lowercase().as_str() {
                        "yolov5m" => DetectorArch::YoloV5m,
                        "yolov5l" => DetectorArch::YoloV5l,
                        other => {
                            return Err(ParseBoardError {
                                line,
                                message: format!("unknown detector arch {other:?}"),
                            })
                        }
                    };
                    if let Some(&existing) = group_archs.get(&group) {
                        if existing != arch {
                            return Err(ParseBoardError {
                                line,
                                message: format!(
                                    "detector group {group} declared with two architectures"
                                ),
                            });
                        }
                    } else {
                        group_archs.insert(group, arch);
                    }
                    Some(group)
                }
            };
            components.push(ComponentSpec {
                class: ClassId(components.len() as u32),
                name: cells[0].to_string(),
                quantity_per_board: quantity,
                detector_group,
                pass_prob,
            });
        }
        if components.is_empty() {
            return Err(ParseBoardError {
                line: 1,
                message: "no component rows".into(),
            });
        }
        // Remap sparse group ids to dense indices.
        let dense: std::collections::BTreeMap<u32, u32> = group_archs
            .keys()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        for c in &mut components {
            if let Some(g) = c.detector_group {
                c.detector_group = Some(dense[&g]);
            }
        }
        let detector_archs: Vec<DetectorArch> = group_archs.values().copied().collect();
        Ok(BoardSpec::new(name, components, detector_archs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_a_matches_paper_shape() {
        let a = BoardSpec::board_a();
        assert_eq!(a.num_components(), 352);
        assert_eq!(a.num_detectors(), 18);
        assert!(a.instances_per_board() > 500.0);
        assert_eq!(a.name(), "Circuit Board A");
    }

    #[test]
    fn board_b_matches_paper_shape() {
        let b = BoardSpec::board_b();
        assert_eq!(b.num_components(), 342);
        assert_eq!(b.num_detectors(), 16);
    }

    #[test]
    fn drifted_board_rotates_quantities_only() {
        let base = BoardSpec::synthetic("drifty", 20, 3, 1.2, 40.0, 0.5);
        let n = base.num_components();
        let drifted = base.drifted(n / 2);
        assert_eq!(drifted.num_components(), n);
        assert_eq!(drifted.num_detectors(), base.num_detectors());
        assert!(drifted.name().contains("drift 10"));
        for (i, (b, d)) in base
            .components()
            .iter()
            .zip(drifted.components())
            .enumerate()
        {
            assert_eq!(b.class, d.class);
            assert_eq!(b.detector_group, d.detector_group);
            assert_eq!(b.pass_prob, d.pass_prob);
            assert_eq!(
                d.quantity_per_board,
                base.components()[(i + n / 2) % n].quantity_per_board
            );
        }
        // The induced class mix genuinely shifts: the declared-hottest
        // class loses mass to the tail.
        assert!(
            drifted.components()[0].quantity_per_board < base.components()[0].quantity_per_board
        );
        // The drifted board still builds a model with the same experts.
        let model = drifted.build_model().unwrap();
        assert_eq!(
            model.num_experts(),
            base.build_model().unwrap().num_experts()
        );
        // A zero shift is the identity on everything but the name.
        let same = base.drifted(n);
        for (b, s) in base.components().iter().zip(same.components()) {
            assert_eq!(b, s);
        }
    }

    #[test]
    fn board_a_model_exceeds_gpu_memory_many_times() {
        // The motivation: >300 experts, ~60 GB, vs a 12 GB GPU.
        let model = BoardSpec::board_a().build_model().unwrap();
        assert_eq!(model.num_experts(), 352 + 18);
        let total = model.total_weight_bytes();
        assert!(total > coserve_sim::memory::Bytes::gib(55), "total {total}");
    }

    #[test]
    fn model_ids_follow_layout() {
        let spec = BoardSpec::board_a();
        let model = spec.build_model().unwrap();
        // Classifier of class k is expert k.
        assert_eq!(spec.classifier_of(ClassId(41)), ExpertId(41));
        assert_eq!(model.expert(ExpertId(41)).arch(), RESNET101);
        // Detectors come after all classifiers.
        let det = spec.detector_of(0);
        assert_eq!(det, ExpertId(352));
        assert!(model.graph().is_subsequent(det));
        assert!(model.graph().is_preliminary(ExpertId(41)));
    }

    #[test]
    fn detectors_are_shared_by_many_components() {
        let spec = BoardSpec::board_a();
        let model = spec.build_model().unwrap();
        let det = spec.detector_of(3);
        let prelims = model.graph().preliminaries_of(det);
        assert!(
            prelims.len() >= 8,
            "detector shared by only {} classifiers",
            prelims.len()
        );
    }

    #[test]
    fn usage_probabilities_are_exact_and_skewed() {
        let spec = BoardSpec::board_a();
        let model = spec.build_model().unwrap();
        // Classification usage sums to 1 (every request runs stage 1).
        let cls_mass: f64 = (0..352)
            .map(|i| model.expert(ExpertId(i)).usage_prob())
            .sum();
        assert!((cls_mass - 1.0).abs() < 1e-9, "cls mass {cls_mass}");
        // Most-used classifier is the most common component.
        let p0 = model.expert(ExpertId(0)).usage_prob();
        let p_last = model.expert(ExpertId(351)).usage_prob();
        assert!(p0 > 10.0 * p_last);
        // Detection experts have aggregate shared usage.
        let det_mass: f64 = (352..370)
            .map(|i| model.expert(ExpertId(i)).usage_prob())
            .sum();
        assert!((0.3..0.7).contains(&det_mass), "det mass {det_mass}");
    }

    #[test]
    fn figure11_cdf_shape_via_board_distribution() {
        let d = BoardSpec::board_a().class_distribution();
        let mass = d.top_k_mass(35);
        assert!((0.5..0.7).contains(&mass), "top-35 mass {mass}");
    }

    #[test]
    fn detected_fraction_is_respected() {
        let spec = BoardSpec::synthetic("t", 100, 5, 1.2, 50.0, 0.4);
        let detected = spec
            .components()
            .iter()
            .filter(|c| c.detector_group.is_some())
            .count();
        assert!((35..=45).contains(&detected), "detected {detected}");
    }

    #[test]
    fn custom_board_via_new() {
        let spec = BoardSpec::new(
            "mini",
            vec![
                ComponentSpec {
                    class: ClassId(0),
                    name: "r1".into(),
                    quantity_per_board: 5.0,
                    detector_group: Some(0),
                    pass_prob: 0.9,
                },
                ComponentSpec {
                    class: ClassId(1),
                    name: "c1".into(),
                    quantity_per_board: 2.0,
                    detector_group: None,
                    pass_prob: 1.0,
                },
            ],
            vec![DetectorArch::YoloV5m],
        );
        let model = spec.build_model().unwrap();
        assert_eq!(model.num_experts(), 3);
        assert_eq!(spec.instances_per_board(), 7.0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_classes_panic() {
        let _ = BoardSpec::new(
            "bad",
            vec![ComponentSpec {
                class: ClassId(5),
                name: "x".into(),
                quantity_per_board: 1.0,
                detector_group: None,
                pass_prob: 0.5,
            }],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_detector_group_panics() {
        let _ = BoardSpec::new(
            "bad",
            vec![ComponentSpec {
                class: ClassId(0),
                name: "x".into(),
                quantity_per_board: 1.0,
                detector_group: Some(3),
                pass_prob: 0.5,
            }],
            vec![DetectorArch::YoloV5m],
        );
    }

    #[test]
    fn csv_round_trip() {
        let csv = "\
name,quantity_per_board,detector_group,detector_arch,pass_prob
resistor-r1,24,0,yolov5m,0.95
capacitor-c3,12,,,0.9
ic-u7,2,5,yolov5l,0.85
";
        let board = BoardSpec::from_csv("csv-board", csv).unwrap();
        assert_eq!(board.num_components(), 3);
        assert_eq!(board.num_detectors(), 2, "sparse group ids densified");
        assert_eq!(board.components()[0].name, "resistor-r1");
        assert_eq!(board.components()[1].detector_group, None);
        assert_eq!(board.components()[2].detector_group, Some(1));
        let model = board.build_model().unwrap();
        assert_eq!(model.num_experts(), 5);
    }

    #[test]
    fn csv_rejects_bad_rows() {
        let header = "name,quantity_per_board,detector_group,detector_arch,pass_prob\n";
        let err = BoardSpec::from_csv("x", "").unwrap_err();
        assert_eq!(err.line, 1);
        let err = BoardSpec::from_csv("x", header).unwrap_err();
        assert!(err.message.contains("no component rows"));
        let err = BoardSpec::from_csv("x", &format!("{header}a,1,0,unknownnet,0.5\n")).unwrap_err();
        assert!(err.message.contains("unknown detector arch"), "{err}");
        let err = BoardSpec::from_csv("x", &format!("{header}a,-3,,,0.5\n")).unwrap_err();
        assert!(err.message.contains("must be positive"));
        let err = BoardSpec::from_csv("x", &format!("{header}a,1,,,1.5\n")).unwrap_err();
        assert!(err.message.contains("outside [0,1]"));
        let err = BoardSpec::from_csv(
            "x",
            &format!("{header}a,1,0,yolov5m,0.5\nb,1,0,yolov5l,0.5\n"),
        )
        .unwrap_err();
        assert!(err.message.contains("two architectures"));
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn csv_rejects_wrong_header() {
        let err = BoardSpec::from_csv("x", "a,b,c\n1,2,3\n").unwrap_err();
        assert!(err.message.contains("unexpected header"));
    }

    #[test]
    fn detector_arch_mapping() {
        assert_eq!(DetectorArch::YoloV5m.arch_id(), YOLOV5M);
        assert_eq!(DetectorArch::YoloV5l.arch_id(), YOLOV5L);
    }
}
