//! A multi-domain LLM expert scenario.
//!
//! Beyond circuit-board inspection, the paper motivates CoE with
//! Qihoo 360's deployment: state-of-the-art expert models from different
//! domains (code, math, law, …) behind a request-analyzing router
//! (§2.1). This module builds such a model — several multi-gigabyte
//! domain experts plus a small shared reranker as the subsequent stage —
//! and the matching request workload, exercising the serving system on
//! a very different operating point: few large experts instead of many
//! small ones.

use coserve_model::arch::ArchSpec;
use coserve_model::coe::{CoeModel, ModelError};
use coserve_model::routing::{ClassId, RouteRule};
use coserve_sim::compute::{LatencyModel, MemoryModel};
use coserve_sim::device::{ArchId, DeviceProfile, KernelProfile, ProcessorKind};
use coserve_sim::memory::Bytes;
use coserve_sim::time::SimSpan;

use crate::distribution::ClassDistribution;
use crate::stream::{Job, JobId, RequestStream};

/// Architecture id of the domain experts (a ~1.3B-parameter LLM, fp16).
pub const LLM_EXPERT: ArchId = ArchId(100);
/// Architecture id of the shared reranker (a ~0.4B-parameter scorer).
pub const LLM_RERANKER: ArchId = ArchId(101);

/// The default domain list.
pub const DOMAINS: [&str; 8] = [
    "code",
    "math",
    "law",
    "medical",
    "finance",
    "writing",
    "translation",
    "search",
];

/// Architecture spec for the domain experts.
#[must_use]
pub fn llm_expert_arch() -> ArchSpec {
    ArchSpec::new(
        LLM_EXPERT,
        "llm-expert-1.3b",
        1_300_000_000,
        Bytes::new(2_600_000_000),
    )
}

/// Architecture spec for the shared reranker.
#[must_use]
pub fn llm_reranker_arch() -> ArchSpec {
    ArchSpec::new(
        LLM_RERANKER,
        "llm-reranker-0.4b",
        400_000_000,
        Bytes::new(800_000_000),
    )
}

/// Installs cost models for the LLM architectures on a device.
///
/// Generation latency is modeled per *request* (a bounded completion),
/// linear in batch size like every other kernel.
pub fn install_llm_kernels(device: &mut DeviceProfile) {
    device.set_kernel(
        LLM_EXPERT,
        ProcessorKind::Gpu,
        KernelProfile {
            latency: LatencyModel::linear(150.0, 45.0).with_saturation(8, 10.0),
            memory: MemoryModel::new(
                Bytes::mib(512),
                llm_expert_arch().weights(),
                Bytes::mib(320),
            ),
        },
    );
    device.set_kernel(
        LLM_EXPERT,
        ProcessorKind::Cpu,
        KernelProfile {
            latency: LatencyModel::linear(900.0, 420.0).with_saturation(4, 60.0),
            memory: MemoryModel::new(
                Bytes::mib(256),
                llm_expert_arch().weights(),
                Bytes::mib(200),
            ),
        },
    );
    device.set_kernel(
        LLM_RERANKER,
        ProcessorKind::Gpu,
        KernelProfile {
            latency: LatencyModel::linear(20.0, 6.0).with_saturation(16, 1.0),
            memory: MemoryModel::new(
                Bytes::mib(128),
                llm_reranker_arch().weights(),
                Bytes::mib(64),
            ),
        },
    );
    device.set_kernel(
        LLM_RERANKER,
        ProcessorKind::Cpu,
        KernelProfile {
            latency: LatencyModel::linear(120.0, 45.0).with_saturation(6, 10.0),
            memory: MemoryModel::new(
                Bytes::mib(64),
                llm_reranker_arch().weights(),
                Bytes::mib(48),
            ),
        },
    );
}

/// Builds a multi-domain CoE: one expert per domain, each followed by a
/// shared reranker with probability `rerank_prob`, routed by domain.
/// Domain popularity follows a Zipf law, giving the usage skew CoServe's
/// expert manager exploits.
///
/// # Errors
///
/// Propagates [`ModelError`] from validation.
///
/// # Panics
///
/// Panics if `num_domains` is zero, exceeds [`DOMAINS`]'s length, or
/// `rerank_prob` is outside `[0, 1]`.
pub fn build_llm_coe(num_domains: usize, rerank_prob: f64) -> Result<CoeModel, ModelError> {
    assert!(
        (1..=DOMAINS.len()).contains(&num_domains),
        "num_domains must be in 1..={}",
        DOMAINS.len()
    );
    let mut b = CoeModel::builder("multi-domain-llm");
    b.arch(llm_expert_arch());
    b.arch(llm_reranker_arch());
    let experts: Vec<_> = DOMAINS[..num_domains]
        .iter()
        .map(|d| b.expert(format!("expert-{d}"), LLM_EXPERT, 0.0))
        .collect();
    let reranker = b.expert("shared-reranker", LLM_RERANKER, 0.0);
    for (i, &e) in experts.iter().enumerate() {
        b.rule(
            ClassId(i as u32),
            RouteRule::with_follow_up(e, reranker, rerank_prob),
        );
    }
    let mut model = b.build()?;
    let dist = domain_distribution(num_domains);
    let usage = model
        .routing()
        .usage_probabilities(&dist.class_probs(), model.num_experts());
    model.set_usage_probs(&usage);
    Ok(model)
}

/// The domain popularity distribution (Zipf, s = 1.1).
#[must_use]
pub fn domain_distribution(num_domains: usize) -> ClassDistribution {
    ClassDistribution::zipf_with_floor(num_domains, 1.1, 100.0, 0.5)
}

/// Generates an LLM request stream: i.i.d. domain draws arriving every
/// `interval`, reranker stage pre-rolled from the model's rules.
///
/// # Panics
///
/// Panics if `num_requests` is zero.
#[must_use]
pub fn llm_stream(
    model: &CoeModel,
    num_domains: usize,
    num_requests: usize,
    interval: SimSpan,
    seed: u64,
) -> RequestStream {
    assert!(num_requests > 0, "stream needs at least one request");
    let dist = domain_distribution(num_domains);
    let mut rng = coserve_sim::rng::SimRng::seed_from(seed);
    let mut class_rng = rng.fork(1);
    let mut stage_rng = rng.fork(2);
    let jobs: Vec<Job> = (0..num_requests)
        .map(|i| {
            let class = dist.sample(&mut class_rng);
            let rule = model.routing().rule(class).expect("domain has a rule");
            let mut stages = Vec::with_capacity(rule.len());
            for stage in rule.stages() {
                stages.push(stage.expert);
                if !stage_rng.bernoulli(stage.proceed_prob) {
                    break;
                }
            }
            Job {
                id: JobId(i as u32),
                class,
                arrival: coserve_sim::time::SimTime::ZERO + interval * i as u64,
                stages,
            }
        })
        .collect();
    RequestStream::from_jobs("multi-domain-llm", jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::expert::ExpertId;

    #[test]
    fn model_shape() {
        let m = build_llm_coe(8, 0.5).unwrap();
        assert_eq!(m.num_experts(), 9);
        let reranker = ExpertId(8);
        assert!(m.graph().is_subsequent(reranker));
        assert_eq!(m.graph().preliminaries_of(reranker).len(), 8);
        // Eight 2.6 GB experts overflow a 12 GB GPU several times over.
        assert!(m.total_weight_bytes() > Bytes::gib(19));
    }

    #[test]
    fn usage_probabilities_skewed_by_domain_popularity() {
        let m = build_llm_coe(6, 0.5).unwrap();
        let p_code = m.expert(ExpertId(0)).usage_prob();
        let p_last = m.expert(ExpertId(5)).usage_prob();
        assert!(p_code > p_last);
        // The shared reranker accumulates about half the total mass.
        let p_rr = m.expert(ExpertId(6)).usage_prob();
        assert!((0.4..0.6).contains(&p_rr), "reranker usage {p_rr}");
    }

    #[test]
    fn kernels_install_on_both_devices() {
        for mut d in coserve_model::devices::paper_devices() {
            install_llm_kernels(&mut d);
            assert!(d.kernel(LLM_EXPERT, ProcessorKind::Gpu).is_some());
            assert!(d.kernel(LLM_RERANKER, ProcessorKind::Cpu).is_some());
        }
    }

    #[test]
    fn stream_routes_to_declared_domains() {
        let m = build_llm_coe(4, 0.6).unwrap();
        let s = llm_stream(&m, 4, 300, SimSpan::from_millis(100), 5);
        assert_eq!(s.len(), 300);
        for j in s.jobs() {
            assert!(j.class.index() < 4);
            assert!(j.stages[0].index() < 4);
        }
        // Some jobs proceed to the reranker.
        let reranked = s.jobs().iter().filter(|j| j.stages.len() == 2).count();
        assert!((100..=260).contains(&reranked), "reranked {reranked}");
    }

    #[test]
    #[should_panic(expected = "num_domains")]
    fn too_many_domains_panics() {
        let _ = build_llm_coe(20, 0.5);
    }
}
