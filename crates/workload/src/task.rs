//! Evaluation tasks.
//!
//! The paper delineates four tasks (§5.1): 2,500 or 3,500 continuously
//! arriving requests from Circuit Board A or B, one component image
//! every 4 ms. [`TaskSpec`] bundles a board, a request count, the
//! arrival interval and a seed; [`TaskSpec::stream`] materializes the
//! jobs.

use coserve_model::coe::{CoeModel, ModelError};
use coserve_sim::time::SimSpan;

use crate::board::BoardSpec;
use crate::stream::{RequestStream, StreamOrder};

/// The production arrival interval: one component image every 4 ms.
pub const PAPER_ARRIVAL_INTERVAL: SimSpan = SimSpan::from_millis(4);

/// One evaluation task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    name: String,
    board: BoardSpec,
    num_requests: usize,
    interval: SimSpan,
    order: StreamOrder,
    seed: u64,
}

impl TaskSpec {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `num_requests` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        board: BoardSpec,
        num_requests: usize,
        interval: SimSpan,
        order: StreamOrder,
        seed: u64,
    ) -> Self {
        assert!(num_requests > 0, "task needs at least one request");
        TaskSpec {
            name: name.into(),
            board,
            num_requests,
            interval,
            order,
            seed,
        }
    }

    /// Task A1: 2,500 requests from Circuit Board A.
    #[must_use]
    pub fn a1() -> Self {
        TaskSpec::new(
            "Task A1",
            BoardSpec::board_a(),
            2_500,
            PAPER_ARRIVAL_INTERVAL,
            StreamOrder::BoardOrder,
            0xA1,
        )
    }

    /// Task A2: 3,500 requests from Circuit Board A.
    #[must_use]
    pub fn a2() -> Self {
        TaskSpec::new(
            "Task A2",
            BoardSpec::board_a(),
            3_500,
            PAPER_ARRIVAL_INTERVAL,
            StreamOrder::BoardOrder,
            0xA2,
        )
    }

    /// Task B1: 2,500 requests from Circuit Board B.
    #[must_use]
    pub fn b1() -> Self {
        TaskSpec::new(
            "Task B1",
            BoardSpec::board_b(),
            2_500,
            PAPER_ARRIVAL_INTERVAL,
            StreamOrder::BoardOrder,
            0xB1,
        )
    }

    /// Task B2: 3,500 requests from Circuit Board B.
    #[must_use]
    pub fn b2() -> Self {
        TaskSpec::new(
            "Task B2",
            BoardSpec::board_b(),
            3_500,
            PAPER_ARRIVAL_INTERVAL,
            StreamOrder::BoardOrder,
            0xB2,
        )
    }

    /// All four paper tasks in presentation order (A1, A2, B1, B2).
    #[must_use]
    pub fn paper_tasks() -> Vec<TaskSpec> {
        vec![
            TaskSpec::a1(),
            TaskSpec::a2(),
            TaskSpec::b1(),
            TaskSpec::b2(),
        ]
    }

    /// The task's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The board the task draws from.
    #[must_use]
    pub fn board(&self) -> &BoardSpec {
        &self.board
    }

    /// Number of primary requests.
    #[must_use]
    pub fn num_requests(&self) -> usize {
        self.num_requests
    }

    /// Arrival interval between requests.
    #[must_use]
    pub fn interval(&self) -> SimSpan {
        self.interval
    }

    /// Builds the CoE model for the task's board.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from model validation.
    pub fn build_model(&self) -> Result<CoeModel, ModelError> {
        self.board.build_model()
    }

    /// Materializes the request stream against `model`.
    #[must_use]
    pub fn stream(&self, model: &CoeModel) -> RequestStream {
        RequestStream::generate(
            self.name.clone(),
            &self.board,
            model,
            self.num_requests,
            self.interval,
            self.order,
            self.seed,
        )
    }

    /// A smaller task with the same board and ordering: the offline
    /// phase's "smaller, representative dataset sampled from the
    /// application scenario" (§4.4). A distinct seed keeps the sample
    /// from being a literal prefix of the evaluation stream.
    #[must_use]
    pub fn sample(&self, num_requests: usize) -> TaskSpec {
        TaskSpec {
            name: format!("{} (sample {num_requests})", self.name),
            board: self.board.clone(),
            num_requests: num_requests.max(1),
            interval: self.interval,
            order: self.order,
            seed: self.seed ^ 0x5A5A_5A5A,
        }
    }

    /// A proportionally scaled-down task for fast tests: `fraction` of
    /// the requests (at least one).
    #[must_use]
    pub fn scaled(&self, fraction: f64) -> TaskSpec {
        let n = ((self.num_requests as f64 * fraction).round() as usize).max(1);
        TaskSpec {
            name: format!("{} (x{fraction})", self.name),
            board: self.board.clone(),
            num_requests: n,
            interval: self.interval,
            order: self.order,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tasks_match_section_5_1() {
        let tasks = TaskSpec::paper_tasks();
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks[0].num_requests(), 2_500);
        assert_eq!(tasks[1].num_requests(), 3_500);
        assert_eq!(tasks[2].num_requests(), 2_500);
        assert_eq!(tasks[3].num_requests(), 3_500);
        assert_eq!(tasks[0].board().name(), "Circuit Board A");
        assert_eq!(tasks[3].board().name(), "Circuit Board B");
        for t in &tasks {
            assert_eq!(t.interval(), SimSpan::from_millis(4));
        }
    }

    #[test]
    fn stream_has_requested_size() {
        let task = TaskSpec::a1().scaled(0.1);
        let model = task.build_model().unwrap();
        let s = task.stream(&model);
        assert_eq!(s.len(), 250);
        assert!(s.name().contains("Task A1"));
    }

    #[test]
    fn stream_is_reproducible_across_calls() {
        let task = TaskSpec::b1().scaled(0.05);
        let model = task.build_model().unwrap();
        assert_eq!(task.stream(&model), task.stream(&model));
    }

    #[test]
    fn sample_differs_from_main_stream() {
        let task = TaskSpec::a1();
        let model = task.build_model().unwrap();
        let sample = task.sample(100);
        assert_eq!(sample.num_requests(), 100);
        let main = task.scaled(0.04); // also 100 requests
        assert_ne!(sample.stream(&model), main.stream(&model));
    }

    #[test]
    fn scaled_never_hits_zero() {
        assert_eq!(TaskSpec::a1().scaled(0.0).num_requests(), 1);
        assert_eq!(TaskSpec::a1().sample(0).num_requests(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_panics() {
        let _ = TaskSpec::new(
            "bad",
            BoardSpec::board_a(),
            0,
            PAPER_ARRIVAL_INTERVAL,
            StreamOrder::Iid,
            1,
        );
    }
}
