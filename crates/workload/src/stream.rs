//! Request streams.
//!
//! A [`RequestStream`] is the concrete work a serving run processes: a
//! timestamped sequence of [`Job`]s, each carrying its pre-routed expert
//! stages. Stage outcomes (does the detection stage run?) are rolled at
//! generation time with a seeded RNG, so *every system under comparison
//! sees byte-identical work* — the fairness property behind the paper's
//! Figures 13–16.

use coserve_model::coe::CoeModel;
use coserve_model::expert::ExpertId;
use coserve_model::routing::ClassId;
use coserve_sim::rng::SimRng;
use coserve_sim::time::{SimSpan, SimTime};

use crate::arrivals::ArrivalProcess;
use crate::board::BoardSpec;

/// Identifies a job within one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One inference request: an input image (or prompt) with its pre-rolled
/// expert chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Dense stream-local id.
    pub id: JobId,
    /// The input class the router saw.
    pub class: ClassId,
    /// When the request enters the system.
    pub arrival: SimTime,
    /// The experts that will actually run, stage by stage (non-empty).
    pub stages: Vec<ExpertId>,
}

/// In what order component images arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Board-by-board: each board instance contributes one image per
    /// component instance, in a per-board shuffled placement order —
    /// how a production line images a conveyor of identical boards.
    BoardOrder,
    /// Independent draws from the component-quantity distribution.
    Iid,
}

/// A generated request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestStream {
    name: String,
    jobs: Vec<Job>,
}

impl RequestStream {
    /// Generates a stream of `num_requests` jobs arriving every
    /// `interval`, using `model`'s routing rules for stage pre-rolls.
    ///
    /// # Panics
    ///
    /// Panics if `num_requests` is zero or the model lacks a routing
    /// rule for a sampled class (impossible for models built from the
    /// same [`BoardSpec`]).
    #[must_use]
    pub fn generate(
        name: impl Into<String>,
        board: &BoardSpec,
        model: &CoeModel,
        num_requests: usize,
        interval: SimSpan,
        order: StreamOrder,
        seed: u64,
    ) -> Self {
        RequestStream::generate_open_loop(
            name,
            board,
            model,
            num_requests,
            ArrivalProcess::Uniform { interval },
            order,
            seed,
        )
    }

    /// Generates a stream whose arrival times come from an open-loop
    /// [`ArrivalProcess`] instead of the fixed conveyor interval.
    ///
    /// With [`ArrivalProcess::Uniform`] this is byte-identical to
    /// [`RequestStream::generate`]: classes and stage pre-rolls use the
    /// same seeded sub-streams, so the arrival schedule is the *only*
    /// thing an arrival-process sweep varies.
    ///
    /// # Panics
    ///
    /// Panics if `num_requests` is zero or the model lacks a routing
    /// rule for a sampled class (impossible for models built from the
    /// same [`BoardSpec`]).
    #[must_use]
    pub fn generate_open_loop(
        name: impl Into<String>,
        board: &BoardSpec,
        model: &CoeModel,
        num_requests: usize,
        process: ArrivalProcess,
        order: StreamOrder,
        seed: u64,
    ) -> Self {
        assert!(num_requests > 0, "stream needs at least one request");
        let mut rng = SimRng::seed_from(seed);
        let mut class_rng = rng.fork(1);
        let mut stage_rng = rng.fork(2);
        let mut arrival_rng = rng.fork(3);
        let arrivals = process.sample_arrivals(num_requests, &mut arrival_rng);

        let classes: Vec<ClassId> = match order {
            StreamOrder::Iid => {
                let dist = board.class_distribution();
                (0..num_requests)
                    .map(|_| dist.sample(&mut class_rng))
                    .collect()
            }
            StreamOrder::BoardOrder => {
                let mut out = Vec::with_capacity(num_requests);
                while out.len() < num_requests {
                    let mut board_images: Vec<ClassId> = board
                        .components()
                        .iter()
                        .flat_map(|c| {
                            let copies = c.quantity_per_board.round().max(1.0) as usize;
                            std::iter::repeat_n(c.class, copies)
                        })
                        .collect();
                    class_rng.shuffle(&mut board_images);
                    out.extend(board_images);
                }
                out.truncate(num_requests);
                out
            }
        };

        let jobs = classes
            .into_iter()
            .zip(arrivals)
            .enumerate()
            .map(|(i, (class, arrival))| {
                let rule = model
                    .routing()
                    .rule(class)
                    .unwrap_or_else(|| panic!("model has no rule for {class}"));
                let mut stages = Vec::with_capacity(rule.len());
                for stage in rule.stages() {
                    stages.push(stage.expert);
                    if !stage_rng.bernoulli(stage.proceed_prob) {
                        break;
                    }
                }
                Job {
                    id: JobId(i as u32),
                    class,
                    arrival,
                    stages,
                }
            })
            .collect();

        RequestStream {
            name: name.into(),
            jobs,
        }
    }

    /// Builds a stream from explicit jobs (for custom scenario
    /// generators; the circuit-board path goes through
    /// [`RequestStream::generate`]).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty, ids are not the dense sequence
    /// `0..n`, arrivals are not non-decreasing, or any job has no
    /// stages.
    #[must_use]
    pub fn from_jobs(name: impl Into<String>, jobs: Vec<Job>) -> Self {
        assert!(!jobs.is_empty(), "stream needs at least one request");
        let mut prev = SimTime::ZERO;
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u32), "job ids must be dense");
            assert!(j.arrival >= prev, "arrivals must be non-decreasing");
            assert!(!j.stages.is_empty(), "job {i} has no stages");
            prev = j.arrival;
        }
        RequestStream {
            name: name.into(),
            jobs,
        }
    }

    /// The stream's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jobs, in arrival order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs (primary requests / images).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the stream is empty (never true after generation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total inference stages across all jobs (each stage is one batchable
    /// unit of work).
    #[must_use]
    pub fn total_stages(&self) -> usize {
        self.jobs.iter().map(|j| j.stages.len()).sum()
    }

    /// The distinct experts the stream touches, sorted.
    #[must_use]
    pub fn distinct_experts(&self) -> Vec<ExpertId> {
        let mut ids: Vec<ExpertId> = self
            .jobs
            .iter()
            .flat_map(|j| j.stages.iter().copied())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The arrival time of the last job.
    ///
    /// # Panics
    ///
    /// Panics on an empty stream (not constructible via `generate`).
    #[must_use]
    pub fn last_arrival(&self) -> SimTime {
        self.jobs.last().expect("stream is non-empty").arrival
    }

    /// A truncated copy with the first `n` jobs — used by the offline
    /// autotuner to sample-run a smaller representative workload (§4.4).
    #[must_use]
    pub fn truncated(&self, n: usize) -> RequestStream {
        RequestStream {
            name: format!("{} (first {n})", self.name),
            jobs: self.jobs.iter().take(n.max(1)).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_board() -> BoardSpec {
        BoardSpec::synthetic("small", 20, 3, 1.2, 30.0, 0.5)
    }

    fn make(order: StreamOrder, n: usize, seed: u64) -> (BoardSpec, RequestStream) {
        let board = small_board();
        let model = board.build_model().unwrap();
        let s =
            RequestStream::generate("s", &board, &model, n, SimSpan::from_millis(4), order, seed);
        (board, s)
    }

    #[test]
    fn arrivals_are_evenly_spaced() {
        let (_, s) = make(StreamOrder::Iid, 10, 1);
        assert_eq!(s.len(), 10);
        for (i, j) in s.jobs().iter().enumerate() {
            assert_eq!(
                j.arrival,
                SimTime::ZERO + SimSpan::from_millis(4) * i as u64
            );
            assert_eq!(j.id, JobId(i as u32));
        }
        assert_eq!(s.last_arrival(), SimTime::ZERO + SimSpan::from_millis(36));
    }

    #[test]
    fn stages_follow_routing_rules() {
        let (board, s) = make(StreamOrder::Iid, 400, 2);
        let model = board.build_model().unwrap();
        for j in s.jobs() {
            assert!(!j.stages.is_empty());
            let rule = model.routing().rule(j.class).unwrap();
            // First stage is always the rule's primary expert.
            assert_eq!(j.stages[0], rule.stages()[0].expert);
            assert!(j.stages.len() <= rule.len());
        }
        // With pass probabilities ~0.9+ and ~50% detected components,
        // a substantial fraction of jobs have two stages.
        let two_stage = s.jobs().iter().filter(|j| j.stages.len() == 2).count();
        assert!(two_stage > 100, "two-stage jobs: {two_stage}");
        assert_eq!(s.total_stages(), s.len() + two_stage);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = make(StreamOrder::BoardOrder, 200, 7);
        let (_, b) = make(StreamOrder::BoardOrder, 200, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = make(StreamOrder::Iid, 200, 7);
        let (_, b) = make(StreamOrder::Iid, 200, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn board_order_covers_every_component_within_one_board() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let per_board: usize = board
            .components()
            .iter()
            .map(|c| c.quantity_per_board.round().max(1.0) as usize)
            .sum();
        let s = RequestStream::generate(
            "one-board",
            &board,
            &model,
            per_board,
            SimSpan::from_millis(4),
            StreamOrder::BoardOrder,
            3,
        );
        // One full board includes every component type.
        let mut classes: Vec<ClassId> = s.jobs().iter().map(|j| j.class).collect();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), board.num_components());
    }

    #[test]
    fn board_order_frequencies_match_quantities() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let per_board: usize = board
            .components()
            .iter()
            .map(|c| c.quantity_per_board.round().max(1.0) as usize)
            .sum();
        let s = RequestStream::generate(
            "two-boards",
            &board,
            &model,
            per_board * 2,
            SimSpan::from_millis(4),
            StreamOrder::BoardOrder,
            3,
        );
        let count0 = s.jobs().iter().filter(|j| j.class == ClassId(0)).count();
        let expected = board.components()[0].quantity_per_board.round() as usize * 2;
        assert_eq!(count0, expected);
    }

    #[test]
    fn open_loop_uniform_matches_generate() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let closed = RequestStream::generate(
            "s",
            &board,
            &model,
            120,
            SimSpan::from_millis(4),
            StreamOrder::Iid,
            7,
        );
        let open = RequestStream::generate_open_loop(
            "s",
            &board,
            &model,
            120,
            ArrivalProcess::Uniform {
                interval: SimSpan::from_millis(4),
            },
            StreamOrder::Iid,
            7,
        );
        assert_eq!(closed, open);
    }

    #[test]
    fn open_loop_poisson_changes_only_arrivals() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let make = |process| {
            RequestStream::generate_open_loop(
                "s",
                &board,
                &model,
                150,
                process,
                StreamOrder::Iid,
                7,
            )
        };
        let uniform = make(ArrivalProcess::Uniform {
            interval: SimSpan::from_millis(4),
        });
        let poisson = make(ArrivalProcess::poisson(250.0));
        assert_ne!(uniform, poisson);
        // Same classes and stage pre-rolls, different arrival times.
        for (u, p) in uniform.jobs().iter().zip(poisson.jobs()) {
            assert_eq!(u.class, p.class);
            assert_eq!(u.stages, p.stages);
        }
        // Arrivals remain non-decreasing (from_jobs' invariant).
        let again = RequestStream::from_jobs("copy", poisson.jobs().to_vec());
        assert_eq!(again.jobs(), poisson.jobs());
    }

    #[test]
    fn open_loop_generation_is_deterministic() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let p = ArrivalProcess::bursty(100.0, 900.0, 100.0, 25.0);
        let a = RequestStream::generate_open_loop("b", &board, &model, 200, p, StreamOrder::Iid, 3);
        let b = RequestStream::generate_open_loop("b", &board, &model, 200, p, StreamOrder::Iid, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let (_, s) = make(StreamOrder::Iid, 50, 1);
        let t = s.truncated(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.jobs()[..], s.jobs()[..10]);
        assert!(t.name().contains("first 10"));
        // Truncation below one clamps to one job.
        assert_eq!(s.truncated(0).len(), 1);
    }

    #[test]
    fn distinct_experts_is_sorted_and_deduped() {
        let (_, s) = make(StreamOrder::Iid, 300, 4);
        let d = s.distinct_experts();
        assert!(!d.is_empty());
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_stream_panics() {
        let board = small_board();
        let model = board.build_model().unwrap();
        let _ = RequestStream::generate(
            "bad",
            &board,
            &model,
            0,
            SimSpan::from_millis(4),
            StreamOrder::Iid,
            1,
        );
    }
}
