//! Open-loop arrival processes.
//!
//! The paper's evaluation replays a fixed-interval stream (one image
//! every 4 ms), a *closed* workload whose offered load never exceeds
//! what the conveyor produces. Online serving instead faces an
//! *open-loop* arrival process: requests arrive on their own schedule
//! whether or not the system keeps up, which is what makes tail
//! latency and admission control meaningful. [`ArrivalProcess`] covers
//! the three shapes the serving literature evaluates against:
//! deterministic (uniform), Poisson, and bursty (a two-state
//! Markov-modulated Poisson process).
//!
//! Sampling is fully deterministic given a seed, so two systems under
//! comparison see byte-identical arrival schedules.

use std::fmt;

use coserve_sim::rng::SimRng;
use coserve_sim::time::{SimSpan, SimTime};

/// An open-loop arrival process for request streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Deterministic arrivals every `interval` — the paper's conveyor.
    Uniform {
        /// Fixed inter-arrival gap.
        interval: SimSpan,
    },
    /// Memoryless arrivals at `rate_per_sec` requests per second.
    Poisson {
        /// Mean arrival rate (requests per second), must be positive.
        rate_per_sec: f64,
    },
    /// A two-state Markov-modulated Poisson process: the stream
    /// alternates between a base phase and a burst phase, each with its
    /// own Poisson rate and exponentially distributed dwell time.
    Mmpp {
        /// Arrival rate during the base phase (requests per second).
        base_rate: f64,
        /// Arrival rate during the burst phase (requests per second).
        burst_rate: f64,
        /// Mean dwell time in the base phase, in milliseconds.
        mean_base_ms: f64,
        /// Mean dwell time in the burst phase, in milliseconds.
        mean_burst_ms: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process with the given mean rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not a positive finite number.
    #[must_use]
    pub fn poisson(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "Poisson rate must be positive"
        );
        ArrivalProcess::Poisson { rate_per_sec }
    }

    /// A bursty MMPP whose base phase runs at `base_rate` and whose
    /// burst phase runs at `burst_rate`, with mean phase dwell times in
    /// milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if any rate or dwell time is not positive and finite.
    #[must_use]
    pub fn bursty(base_rate: f64, burst_rate: f64, mean_base_ms: f64, mean_burst_ms: f64) -> Self {
        for v in [base_rate, burst_rate, mean_base_ms, mean_burst_ms] {
            assert!(v.is_finite() && v > 0.0, "MMPP parameters must be positive");
        }
        ArrivalProcess::Mmpp {
            base_rate,
            burst_rate,
            mean_base_ms,
            mean_burst_ms,
        }
    }

    /// The long-run mean arrival rate in requests per second — the
    /// *offered load* a latency-vs-load curve plots on its x-axis.
    #[must_use]
    pub fn offered_load_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { interval } => {
                let secs = interval.as_secs_f64();
                if secs > 0.0 {
                    1.0 / secs
                } else {
                    f64::INFINITY
                }
            }
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_ms,
                mean_burst_ms,
            } => {
                // Phase occupancy is proportional to mean dwell time.
                (base_rate * mean_base_ms + burst_rate * mean_burst_ms)
                    / (mean_base_ms + mean_burst_ms)
            }
        }
    }

    /// Samples `n` arrival timestamps starting at time zero, in
    /// non-decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_arrivals(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        assert!(n > 0, "arrival schedule needs at least one request");
        match *self {
            ArrivalProcess::Uniform { interval } => (0..n)
                .map(|i| SimTime::ZERO + interval * i as u64)
                .collect(),
            ArrivalProcess::Poisson { rate_per_sec } => {
                let mut t_ms = 0.0f64;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(SimTime::ZERO + SimSpan::from_millis_f64(t_ms));
                    t_ms += exp_gap_ms(rate_per_sec, rng);
                }
                out
            }
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                mean_base_ms,
                mean_burst_ms,
            } => {
                // Exact simulation: thanks to memorylessness, the
                // arrival clock restarts cleanly at each phase switch.
                let mut t_ms = 0.0f64;
                let mut in_burst = false;
                let mut phase_end_ms = exp_ms(mean_base_ms, rng);
                let mut out = Vec::with_capacity(n);
                out.push(SimTime::ZERO);
                while out.len() < n {
                    let rate = if in_burst { burst_rate } else { base_rate };
                    let candidate = t_ms + exp_gap_ms(rate, rng);
                    if candidate <= phase_end_ms {
                        t_ms = candidate;
                        out.push(SimTime::ZERO + SimSpan::from_millis_f64(t_ms));
                    } else {
                        t_ms = phase_end_ms;
                        in_burst = !in_burst;
                        let dwell = if in_burst {
                            mean_burst_ms
                        } else {
                            mean_base_ms
                        };
                        phase_end_ms = t_ms + exp_ms(dwell, rng);
                    }
                }
                out
            }
        }
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalProcess::Uniform { interval } => {
                write!(f, "uniform({interval})")
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                write!(f, "poisson({rate_per_sec:.1}/s)")
            }
            ArrivalProcess::Mmpp {
                base_rate,
                burst_rate,
                ..
            } => write!(f, "mmpp({base_rate:.1}/s..{burst_rate:.1}/s)"),
        }
    }
}

/// An exponential inter-arrival gap for `rate_per_sec`, in milliseconds.
fn exp_gap_ms(rate_per_sec: f64, rng: &mut SimRng) -> f64 {
    exp_ms(1000.0 / rate_per_sec, rng)
}

/// An exponential draw with the given mean, in milliseconds.
///
/// `next_f64` is in `[0, 1)`, so `1 - u` is in `(0, 1]` and the log is
/// finite.
fn exp_ms(mean_ms: f64, rng: &mut SimRng) -> f64 {
    -(1.0 - rng.next_f64()).ln() * mean_ms
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The empirical rate of a schedule: arrivals per second over its
    /// span (`None` for a degenerate zero-length span).
    fn empirical_rate(arrivals: &[SimTime]) -> Option<f64> {
        let span = arrivals
            .last()
            .unwrap()
            .saturating_since(arrivals[0])
            .as_secs_f64();
        (span > 0.0).then(|| (arrivals.len() - 1) as f64 / span)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Poisson schedules are non-decreasing from time zero and, over
        /// a long horizon, deliver the configured mean rate within 10 %.
        #[test]
        fn poisson_is_monotone_and_rate_accurate(
            seed in 0u64..10_000,
            rate in 20.0f64..2_000.0,
        ) {
            let p = ArrivalProcess::poisson(rate);
            let arrivals = p.sample_arrivals(4_000, &mut SimRng::seed_from(seed));
            prop_assert_eq!(arrivals[0], SimTime::ZERO);
            prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
            let measured = empirical_rate(&arrivals).expect("positive-rate span");
            let err = (measured - rate).abs() / rate;
            prop_assert!(
                err < 0.10,
                "poisson({rate}/s) measured {measured:.1}/s ({:.1} % off)",
                100.0 * err
            );
        }

        /// MMPP schedules are non-decreasing and their long-run rate
        /// matches the dwell-weighted offered load within 10 %.
        #[test]
        fn mmpp_is_monotone_and_rate_accurate(
            seed in 0u64..10_000,
            base in 50.0f64..400.0,
            burst_mult in 2.0f64..4.0,
        ) {
            // Short dwell times pack many phase cycles into the horizon,
            // so the empirical phase occupancy converges.
            let p = ArrivalProcess::bursty(base, base * burst_mult, 40.0, 20.0);
            let arrivals = p.sample_arrivals(8_000, &mut SimRng::seed_from(seed));
            prop_assert_eq!(arrivals[0], SimTime::ZERO);
            prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
            let offered = p.offered_load_rps();
            let measured = empirical_rate(&arrivals).expect("positive-rate span");
            let err = (measured - offered).abs() / offered;
            prop_assert!(
                err < 0.10,
                "mmpp offered {offered:.1}/s measured {measured:.1}/s ({:.1} % off)",
                100.0 * err
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_fixed_interval() {
        let p = ArrivalProcess::Uniform {
            interval: SimSpan::from_millis(4),
        };
        let mut rng = SimRng::seed_from(1);
        let arrivals = p.sample_arrivals(5, &mut rng);
        for (i, at) in arrivals.iter().enumerate() {
            assert_eq!(*at, SimTime::ZERO + SimSpan::from_millis(4) * i as u64);
        }
        assert!((p.offered_load_rps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let p = ArrivalProcess::poisson(100.0);
        let a = p.sample_arrivals(500, &mut SimRng::seed_from(9));
        let b = p.sample_arrivals(500, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a[0], SimTime::ZERO);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::poisson(200.0); // mean gap 5 ms
        let arrivals = p.sample_arrivals(4000, &mut SimRng::seed_from(3));
        let span = arrivals.last().unwrap().saturating_since(arrivals[0]);
        let mean_gap = span.as_millis_f64() / (arrivals.len() - 1) as f64;
        assert!(
            (mean_gap - 5.0).abs() < 0.5,
            "mean gap {mean_gap:.2} ms far from 5 ms"
        );
    }

    #[test]
    fn mmpp_is_deterministic_monotone_and_bursty() {
        let p = ArrivalProcess::bursty(50.0, 800.0, 200.0, 50.0);
        let a = p.sample_arrivals(2000, &mut SimRng::seed_from(11));
        let b = p.sample_arrivals(2000, &mut SimRng::seed_from(11));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Burstiness: the gap distribution is overdispersed relative to
        // a Poisson process of the same mean rate (CV > 1).
        let gaps: Vec<f64> = a
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_millis_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.1, "MMPP coefficient of variation {cv:.2} not bursty");
    }

    #[test]
    fn mmpp_offered_load_is_dwell_weighted() {
        let p = ArrivalProcess::bursty(100.0, 300.0, 300.0, 100.0);
        // 3/4 of time at 100/s, 1/4 at 300/s -> 150/s.
        assert!((p.offered_load_rps() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn display_names_the_shape() {
        assert!(ArrivalProcess::poisson(10.0)
            .to_string()
            .contains("poisson"));
        assert!(ArrivalProcess::bursty(1.0, 2.0, 3.0, 4.0)
            .to_string()
            .contains("mmpp"));
        assert!(ArrivalProcess::Uniform {
            interval: SimSpan::from_millis(4)
        }
        .to_string()
        .contains("uniform"));
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_arrivals_panic() {
        let _ = ArrivalProcess::poisson(1.0).sample_arrivals(0, &mut SimRng::seed_from(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_poisson_rate_panics() {
        let _ = ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_mmpp_params_panic() {
        let _ = ArrivalProcess::bursty(1.0, f64::NAN, 1.0, 1.0);
    }
}
