//! Discrete class distributions.
//!
//! Expert usage in a deployment is driven by how often each input class
//! occurs. The paper's key empirical shape (Figure 11) is a heavily
//! skewed distribution: sorted by usage, the top ~35 of 352 experts
//! cover ~60 % of requests. A Zipf-like law with a per-board floor of
//! one instance per component type reproduces that curve.

use coserve_model::routing::ClassId;
use coserve_sim::rng::SimRng;

/// A discrete probability distribution over input classes, represented
/// by non-negative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDistribution {
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    total: f64,
}

impl ClassDistribution {
    /// Creates a distribution from raw weights (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    #[must_use]
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "distribution needs at least one class");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        ClassDistribution {
            weights,
            cumulative,
            total,
        }
    }

    /// A uniform distribution over `n` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "distribution needs at least one class");
        ClassDistribution::from_weights(vec![1.0; n])
    }

    /// A Zipf-with-floor distribution over `n` classes: class `i`
    /// (0-based) gets weight `max(floor, scale · (i+1)^-s)`.
    ///
    /// This models per-board component quantities: popular components
    /// (resistors, capacitors) appear dozens of times per board, but
    /// every declared component type appears at least `floor` times.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or parameters are non-positive.
    #[must_use]
    pub fn zipf_with_floor(n: usize, s: f64, scale: f64, floor: f64) -> Self {
        assert!(n > 0 && s > 0.0 && scale > 0.0 && floor >= 0.0);
        let weights = (0..n)
            .map(|i| (scale * ((i + 1) as f64).powf(-s)).max(floor))
            .collect();
        ClassDistribution::from_weights(weights)
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the distribution is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The probability of class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn prob(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }

    /// All `(class, probability)` pairs, in class order.
    #[must_use]
    pub fn class_probs(&self) -> Vec<(ClassId, f64)> {
        (0..self.weights.len())
            .map(|i| (ClassId(i as u32), self.prob(i)))
            .collect()
    }

    /// Draws one class.
    pub fn sample(&self, rng: &mut SimRng) -> ClassId {
        let x = rng.next_f64() * self.total;
        // Binary search over the cumulative weights.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        ClassId(idx.min(self.weights.len() - 1) as u32)
    }

    /// The fraction of probability mass covered by the `k` most likely
    /// classes — the CDF in the paper's Figure 11.
    #[must_use]
    pub fn top_k_mass(&self, k: usize) -> f64 {
        let mut sorted = self.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        sorted.iter().take(k).sum::<f64>() / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_probabilities() {
        let d = ClassDistribution::uniform(4);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        for i in 0..4 {
            assert!((d.prob(i) - 0.25).abs() < 1e-12);
        }
        let probs = d.class_probs();
        assert_eq!(probs.len(), 4);
        assert_eq!(probs[2].0, ClassId(2));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = ClassDistribution::zipf_with_floor(352, 1.2, 200.0, 1.0);
        let sum: f64 = (0..d.len()).map(|i| d.prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_floor_reproduces_figure11_cdf() {
        // Paper Figure 11: the 35 most used of 352 experts cover ~60 %.
        let d = ClassDistribution::zipf_with_floor(352, 1.2, 200.0, 1.0);
        let mass = d.top_k_mass(35);
        assert!(
            (0.5..0.7).contains(&mass),
            "top-35 mass {mass:.3} outside Figure 11 band"
        );
        assert!((d.top_k_mass(352) - 1.0).abs() < 1e-9);
        assert!((d.top_k_mass(1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let d = ClassDistribution::zipf_with_floor(100, 1.2, 100.0, 1.0);
        for i in 1..100 {
            assert!(d.prob(i) <= d.prob(i - 1) + 1e-12);
        }
    }

    #[test]
    fn sampling_matches_probabilities() {
        let d = ClassDistribution::from_weights(vec![7.0, 2.0, 1.0]);
        let mut rng = SimRng::seed_from(99);
        let mut counts = [0u32; 3];
        let n = 20_000;
        for _ in 0..n {
            counts[d.sample(&mut rng).index()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = f64::from(count) / f64::from(n);
            assert!(
                (empirical - d.prob(i)).abs() < 0.02,
                "class {i}: empirical {empirical:.3} vs {:.3}",
                d.prob(i)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = ClassDistribution::uniform(10);
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn zero_weight_classes_are_never_sampled() {
        let d = ClassDistribution::from_weights(vec![0.0, 1.0, 0.0]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), ClassId(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_weights_panic() {
        let _ = ClassDistribution::from_weights(vec![]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = ClassDistribution::from_weights(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = ClassDistribution::from_weights(vec![1.0, -0.5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Samples always land on a class with positive weight.
        #[test]
        fn samples_respect_support(
            weights in proptest::collection::vec(0.0f64..10.0, 1..30),
            seed in any::<u64>(),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let d = ClassDistribution::from_weights(weights.clone());
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..50 {
                let c = d.sample(&mut rng);
                prop_assert!(c.index() < weights.len());
                prop_assert!(weights[c.index()] > 0.0);
            }
        }

        /// `top_k_mass` is monotone in k and bounded by 1.
        #[test]
        fn top_k_mass_monotone(
            weights in proptest::collection::vec(0.0f64..10.0, 2..30),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let d = ClassDistribution::from_weights(weights.clone());
            let mut prev = 0.0;
            for k in 0..=weights.len() {
                let m = d.top_k_mass(k);
                prop_assert!(m + 1e-12 >= prev);
                prop_assert!(m <= 1.0 + 1e-12);
                prev = m;
            }
        }
    }
}
