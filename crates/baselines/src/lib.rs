//! # coserve-baselines
//!
//! The baseline serving systems from the CoServe paper's evaluation
//! (§5.1), expressed as policy configurations over the shared
//! `coserve-core` engine: Samba-CoE (FCFS + LRU with a CPU-memory cache
//! tier on NUMA), Samba-CoE FIFO, and Samba-CoE Parallel — plus the
//! assembled five-system evaluation suite of Figures 13–14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod samba;
pub mod suite;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::samba::{
        all_baselines, samba_coe, samba_coe_fifo, samba_coe_parallel, FCFS_SCHEDULING_COST,
    };
    pub use crate::suite::{evaluation_suite, suite_names};
}

pub use prelude::*;
