//! The Samba-CoE baselines (§5.1).
//!
//! Samba-CoE is the state-of-the-art CoE serving system the paper
//! compares against. The paper defines three baseline variants built on
//! it; all three run on the shared `coserve-core` engine so that only
//! the policies differ:
//!
//! 1. **Samba-CoE** — first-come-first-served request handling, LRU
//!    expert replacement. On NUMA devices CPU memory acts as a cache
//!    tier (experts load from there when present, otherwise from SSD);
//!    on UMA devices experts load directly from SSD.
//! 2. **Samba-CoE FIFO** — the replacement strategy switched to FIFO.
//! 3. **Samba-CoE Parallel** — multiple parallel inference executors
//!    matched to CoServe's executor count, requests distributed
//!    round-robin.

use coserve_core::config::{ArrangePolicy, AssignPolicy, SystemConfig};
use coserve_core::evict::EvictionPolicy;
use coserve_core::presets::casual_executors;
use coserve_sim::device::DeviceProfile;
use coserve_sim::time::SimSpan;

/// Scheduling cost charged per request by the FCFS baselines — a queue
/// append, essentially free compared to CoServe's prediction work.
pub const FCFS_SCHEDULING_COST: SimSpan = SimSpan::from_micros(200);

fn samba_base(name: &str) -> coserve_core::config::SystemConfigBuilder {
    SystemConfig::builder(name)
        .assign(AssignPolicy::RoundRobin)
        .arrange(ArrangePolicy::Fcfs)
        .eviction(EvictionPolicy::Lru)
        .scheduling_cost(FCFS_SCHEDULING_COST)
}

/// The plain Samba-CoE baseline: one GPU inference executor, FCFS
/// ordering, LRU replacement. The `_device` parameter documents that
/// the configuration is device-independent; the cache-vs-SSD behaviour
/// follows from the device's memory architecture at run time.
#[must_use]
pub fn samba_coe(_device: &DeviceProfile) -> SystemConfig {
    samba_base("Samba-CoE").gpu_executors(1).build()
}

/// Samba-CoE with FIFO expert replacement.
#[must_use]
pub fn samba_coe_fifo(_device: &DeviceProfile) -> SystemConfig {
    samba_base("Samba-CoE FIFO")
        .gpu_executors(1)
        .eviction(EvictionPolicy::Fifo)
        .build()
}

/// Samba-CoE Parallel: executor count matched to CoServe's casual
/// configuration on this device, round-robin request distribution.
#[must_use]
pub fn samba_coe_parallel(device: &DeviceProfile) -> SystemConfig {
    let (gpus, cpus) = casual_executors(device);
    samba_base("Samba-CoE Parallel")
        .gpu_executors(gpus)
        .cpu_executors(cpus)
        .build()
}

/// The three Samba-CoE baselines in the paper's presentation order.
#[must_use]
pub fn all_baselines(device: &DeviceProfile) -> Vec<SystemConfig> {
    vec![
        samba_coe(device),
        samba_coe_fifo(device),
        samba_coe_parallel(device),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_model::devices;

    #[test]
    fn samba_is_single_executor_fcfs_lru() {
        let c = samba_coe(&devices::numa_rtx3080ti());
        assert_eq!(c.executors.len(), 1);
        assert_eq!(c.gpu_executor_count(), 1);
        assert_eq!(c.assign, AssignPolicy::RoundRobin);
        assert_eq!(c.arrange, ArrangePolicy::Fcfs);
        assert_eq!(c.eviction, EvictionPolicy::Lru);
        assert_eq!(c.name, "Samba-CoE");
    }

    #[test]
    fn fifo_variant_differs_only_in_eviction() {
        let lru = samba_coe(&devices::numa_rtx3080ti());
        let fifo = samba_coe_fifo(&devices::numa_rtx3080ti());
        assert_eq!(fifo.eviction, EvictionPolicy::Fifo);
        assert_eq!(fifo.executors, lru.executors);
        assert_eq!(fifo.assign, lru.assign);
        assert_eq!(fifo.arrange, lru.arrange);
    }

    #[test]
    fn parallel_matches_coserve_executor_counts() {
        let numa = samba_coe_parallel(&devices::numa_rtx3080ti());
        assert_eq!(numa.gpu_executor_count(), 3);
        assert_eq!(numa.cpu_executor_count(), 1);
        let uma = samba_coe_parallel(&devices::uma_apple_m2());
        assert_eq!(uma.gpu_executor_count(), 2);
        assert_eq!(uma.cpu_executor_count(), 1);
        assert_eq!(uma.eviction, EvictionPolicy::Lru);
    }

    #[test]
    fn all_baselines_ordered_as_in_paper() {
        let names: Vec<String> = all_baselines(&devices::numa_rtx3080ti())
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(
            names,
            vec!["Samba-CoE", "Samba-CoE FIFO", "Samba-CoE Parallel"]
        );
    }

    #[test]
    fn baselines_schedule_cheaply() {
        for c in all_baselines(&devices::uma_apple_m2()) {
            assert_eq!(c.scheduling_cost, FCFS_SCHEDULING_COST);
            assert!(c.preload, "baselines also preload by usage (fair start)");
        }
    }
}
