//! The full evaluation suite (Figures 13–14).
//!
//! Convenience constructors assembling the five systems the paper's
//! headline comparison plots: the three Samba-CoE baselines plus
//! CoServe Best (autotuned offline) and CoServe Casual.

use coserve_core::autotune::{tune, TunedSystem, WindowSearchOptions};
use coserve_core::config::SystemConfig;
use coserve_core::perf::PerfMatrix;
use coserve_core::presets;
use coserve_model::coe::CoeModel;
use coserve_sim::device::DeviceProfile;
use coserve_workload::stream::RequestStream;

use crate::samba::all_baselines;

/// The five systems of Figures 13–14, in presentation order. The
/// CoServe Best entry comes from the offline autotuner run on
/// `tuning_sample` (§4.4–§4.5); the returned [`TunedSystem`] carries the
/// search traces for Figures 17–18.
#[must_use]
pub fn evaluation_suite(
    device: &DeviceProfile,
    model: &CoeModel,
    perf: &PerfMatrix,
    tuning_sample: &RequestStream,
    window_options: WindowSearchOptions,
) -> (Vec<SystemConfig>, TunedSystem) {
    let tuned = tune(device, model, perf, tuning_sample, window_options);
    let mut systems = all_baselines(device);
    systems.push(tuned.config.clone());
    systems.push(presets::coserve_casual(device));
    (systems, tuned)
}

/// The five system names in presentation order (legend of Figure 13).
#[must_use]
pub fn suite_names() -> Vec<&'static str> {
    vec![
        "Samba-CoE",
        "Samba-CoE FIFO",
        "Samba-CoE Parallel",
        "CoServe Best",
        "CoServe Casual",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use coserve_core::profiler::{Profiler, UsageSource};
    use coserve_model::devices;
    use coserve_workload::board::BoardSpec;
    use coserve_workload::stream::StreamOrder;

    #[test]
    fn suite_builds_five_systems_in_order() {
        let board = BoardSpec::synthetic("suite", 40, 3, 1.2, 50.0, 0.5);
        let model = board.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let sample = RequestStream::generate(
            "sample",
            &board,
            &model,
            150,
            coserve_sim::time::SimSpan::from_millis(4),
            StreamOrder::Iid,
            3,
        );
        let (systems, tuned) = evaluation_suite(
            &device,
            &model,
            &perf,
            &sample,
            WindowSearchOptions {
                max_trials: 4,
                ..WindowSearchOptions::default()
            },
        );
        let names: Vec<&str> = systems.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, suite_names());
        // Either the window target was adopted or the validation guard
        // fell back to the fraction split; both are valid Best configs.
        assert!(
            tuned.config.memory.gpu_resident_experts.is_some()
                || (tuned.config.memory.gpu_pool_fraction - 0.75).abs() < 1e-12
        );
        assert!(!tuned.window.trials.is_empty());
        assert!(!tuned.executor_trials.is_empty());
    }
}
