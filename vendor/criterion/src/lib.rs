//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to the crates.io
//! registry, so this vendored crate supplies the subset of criterion's API
//! that the `coserve-bench` benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher`] (`iter` / `iter_batched`), [`BatchSize`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is real (wall-clock over a fixed iteration budget) but there is no
//! statistical analysis, warm-up tuning, or HTML reporting. The goal is that
//! `cargo bench` runs, prints a per-benchmark mean, and exercises exactly the
//! same code paths the real harness would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's export.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost across a batch of iterations.
///
/// The stand-in runs every batch size the same way (setup once per
/// iteration), so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup is cheap relative to the routine.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs per batch chosen by the harness.
    PerIteration,
}

/// Number of timed iterations per benchmark in the stand-in harness.
///
/// Kept deliberately small: `cargo bench` in CI should smoke-test the
/// benchmark bodies, not produce publication-quality numbers.
const DEFAULT_ITERS: u64 = 10;

/// Measures and reports a single benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, name: &str) {
        let mean = self.elapsed.as_secs_f64() / self.iters.max(1) as f64;
        println!("bench: {name:<60} {:>12.3} ms/iter", mean * 1e3);
    }
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<u64>,
}

impl Criterion {
    /// Benchmarks a single routine under `name`.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: ToString,
        F: FnMut(&mut Bencher),
    {
        let iters = self.sample_size.unwrap_or(DEFAULT_ITERS);
        let mut b = Bencher::new(iters);
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: ToString>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_ITERS),
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion enforces a floor of 10 samples; mirror that so callers
        // passing small numbers behave identically against the real crate.
        self.sample_size = (n as u64).max(10);
        self
    }

    /// Sets the target measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a routine within this group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: ToString,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.to_string()));
        self
    }

    /// Finishes the group. A no-op in the stand-in harness.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
