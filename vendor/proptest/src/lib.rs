//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this workspace has no access to the crates.io
//! registry, so this vendored crate supplies the subset of proptest's API the
//! workspace's `#[cfg(test)] mod proptests` modules use:
//!
//! * the [`proptest!`] macro (multiple test functions, optional
//!   `#![proptest_config(...)]` header);
//! * [`Strategy`] implementations for integer and float ranges, tuples of
//!   strategies, [`any`] over primitive types, and
//!   [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Values are drawn from a deterministic per-test PRNG (seeded from the test
//! function's name), so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the drawn inputs printed, which is
//! enough signal for the deterministic simulation code under test here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Default number of cases each property runs when no
/// `#![proptest_config]` override is present. The real crate defaults to
/// 256; we keep a smaller budget because several properties here drive the
/// full serving engine.
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic split-mix PRNG used to draw property inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed. The [`proptest!`] macro seeds one
    /// from the test function's name, so each property gets a stable,
    /// distinct stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives a seed from a test name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for a property test. The stand-in samples without
/// shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range: any value works.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives used here.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values; the real crate also biases away
        // from NaN/inf in its default f64 strategy.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy for an unconstrained value of `T`. Returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Produces a strategy for any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Asserts a condition inside a property, reporting the drawn inputs on
/// failure (via the surrounding [`proptest!`] harness panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when `cond` is false. The stand-in harness runs
/// the case body in a closure, so an early return abandons just this case;
/// unlike the real crate, skipped cases still count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body once per case.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    // Without a config header.
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::TestRng::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let drawn = format!(
                    concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}",)+),
                    case $(, &$arg)+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = result {
                    eprintln!("proptest failure in {}: {}", stringify!($name), drawn);
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}
