//! Offline-phase integration: the profiler's measurements must be good
//! enough for the scheduler's predictions, and the autotuner must
//! produce servable configurations.

use coserve::core::autotune;
use coserve::prelude::*;

#[test]
fn profiled_kb_predicts_ground_truth_within_tolerance() {
    let task = TaskSpec::a1().scaled(0.01);
    let model = task.build_model().unwrap();
    for device in devices::paper_devices() {
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        for arch in model.archs() {
            for proc in ProcessorKind::ALL {
                let entry = perf.expect_entry(arch.id(), proc);
                let kernel = device.kernel(arch.id(), proc).unwrap();
                // Within the linear (pre-saturation) region the fitted
                // prediction tracks ground truth to a few percent.
                for n in [1u32, 2, entry.max_batch.min(4)] {
                    let predicted = entry.predicted_latency(n).as_millis_f64();
                    let actual = kernel.latency.latency_ms(n);
                    let rel = (predicted - actual).abs() / actual;
                    assert!(
                        rel < 0.10,
                        "{} {} {proc} n={n}: predicted {predicted:.2} vs {actual:.2}",
                        device.name(),
                        arch.name()
                    );
                }
            }
        }
    }
}

#[test]
fn empirical_usage_matches_declared_on_large_sample() {
    let task = TaskSpec::a1();
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let sample = task.sample(5_000).stream(&model);
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Empirical(&sample));
    // Compare the top-10 ranking: the heavy hitters must agree.
    let declared: Vec<ExpertId> = model.experts_by_usage().into_iter().take(10).collect();
    let estimated: Vec<ExpertId> = perf.experts_by_usage().iter().copied().take(10).collect();
    let overlap = declared.iter().filter(|e| estimated.contains(e)).count();
    assert!(
        overlap >= 7,
        "top-10 overlap only {overlap}: {declared:?} vs {estimated:?}"
    );
}

#[test]
fn usage_cdf_matches_figure_11_shape() {
    let task = TaskSpec::a1().scaled(0.01);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let cdf = autotune::UsageCdf::from_perf(&perf);
    let c35 = cdf.coverage(35);
    assert!(
        (0.45..0.75).contains(&c35),
        "top-35 coverage {c35:.3} outside Figure 11 band"
    );
}

#[test]
fn window_search_result_is_servable_and_in_range() {
    let task = TaskSpec::a1().scaled(0.06);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let sample = task.sample(100).stream(&model);
    let base = presets::coserve(&device);
    let result = autotune::window_search(
        &device,
        &model,
        &perf,
        &base,
        &sample,
        autotune::WindowSearchOptions {
            max_trials: 5,
            ..autotune::WindowSearchOptions::default()
        },
    );
    assert!(result.chosen >= 1);
    assert!(result.chosen <= model.num_experts());
    // The chosen count yields a servable config that completes work.
    let config = presets::coserve_with(&device, "win", 3, 1, Some(result.chosen));
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&sample);
    assert_eq!(report.completed, sample.len());
}

#[test]
fn tuned_best_is_at_least_as_good_as_casual_on_sample() {
    let task = TaskSpec::a1().scaled(0.1);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let sample = task.sample(150).stream(&model);
    let tuned = autotune::tune(
        &device,
        &model,
        &perf,
        &sample,
        autotune::WindowSearchOptions {
            max_trials: 5,
            ..autotune::WindowSearchOptions::default()
        },
    );
    let best = Engine::new(&device, &model, &perf, &tuned.config)
        .unwrap()
        .run(&sample);
    let casual = Engine::new(&device, &model, &perf, &presets::coserve_casual(&device))
        .unwrap()
        .run(&sample);
    assert!(
        best.throughput_ips() >= casual.throughput_ips() * 0.999,
        "Best {:.2} below Casual {:.2} on the tuning sample",
        best.throughput_ips(),
        casual.throughput_ips()
    );
}

#[test]
fn memory_layout_never_exceeds_device_memory() {
    let task = TaskSpec::a1().scaled(0.01);
    let model = task.build_model().unwrap();
    for device in devices::paper_devices() {
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        for (g, c) in [(1usize, 0usize), (3, 1), (5, 2)] {
            let mut builder = SystemConfig::builder("layout").gpu_executors(g);
            if c > 0 {
                builder = builder.cpu_executors(c);
            }
            let config = builder.build();
            let layout = plan_memory(&device, &model, &perf, &config);
            let gpu_total: Bytes = config
                .executors
                .iter()
                .zip(&layout.executors)
                .filter(|(s, _)| s.processor == ProcessorKind::Gpu)
                .map(|(_, m)| m.pool_capacity + m.workspace)
                .sum();
            assert!(
                gpu_total <= device.gpu_usable(),
                "{}: {g}G+{c}C GPU layout {gpu_total} exceeds usable {}",
                device.name(),
                device.gpu_usable()
            );
            if device.has_staging_cache() {
                let cpu_total: Bytes = config
                    .executors
                    .iter()
                    .zip(&layout.executors)
                    .filter(|(s, _)| s.processor == ProcessorKind::Cpu)
                    .map(|(_, m)| m.pool_capacity + m.workspace)
                    .sum();
                assert!(cpu_total + layout.cache <= device.cpu_usable());
            }
        }
    }
}
