//! Ablation integration tests (paper §5.3, Figures 15–16): each
//! optimization step — expert management (EM), request arranging (RA),
//! request assigning — must contribute.

use coserve::prelude::*;

fn ladder_reports(scale: f64, device: DeviceProfile) -> Vec<RunReport> {
    let task = TaskSpec::a1().scaled(scale);
    let model = task.build_model().unwrap();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    presets::ablation_ladder(&device)
        .iter()
        .map(|config| {
            Engine::new(&device, &model, &perf, config)
                .unwrap()
                .run(&stream)
        })
        .collect()
}

#[test]
fn full_coserve_dominates_none_on_numa() {
    let reports = ladder_reports(0.15, devices::numa_rtx3080ti());
    let none = &reports[0];
    let full = &reports[3];
    assert!(
        full.throughput_ips() > 1.5 * none.throughput_ips(),
        "full {:.1} vs none {:.1}",
        full.throughput_ips(),
        none.throughput_ips()
    );
    assert!(
        full.expert_switches() < none.expert_switches(),
        "full {} vs none {} switches",
        full.expert_switches(),
        none.expert_switches()
    );
}

#[test]
fn each_step_helps_or_is_neutral() {
    // The paper reports strictly increasing throughput per step; on a
    // scaled-down task we allow small regressions (5 %) between
    // adjacent steps but require overall monotone trend and a strictly
    // better final system.
    for device in devices::paper_devices() {
        let reports = ladder_reports(0.15, device.clone());
        let throughputs: Vec<f64> = reports.iter().map(RunReport::throughput_ips).collect();
        for w in throughputs.windows(2) {
            assert!(
                w[1] > w[0] * 0.95,
                "{}: step regressed {:.2} -> {:.2} ({:?})",
                device.name(),
                w[0],
                w[1],
                throughputs
            );
        }
        assert!(
            throughputs[3] > throughputs[0],
            "{}: ladder did not improve overall: {throughputs:?}",
            device.name()
        );
    }
}

#[test]
fn switch_counts_decrease_along_ladder() {
    let reports = ladder_reports(0.15, devices::numa_rtx3080ti());
    let switches: Vec<u64> = reports.iter().map(RunReport::expert_switches).collect();
    // Figure 16: each optimization reduces switches; allow slack for the
    // EM step (it reorders evictions, not volume) but require the
    // arranging step and the full system to cut deeply.
    assert!(
        switches[2] < switches[0],
        "EM+RA did not cut switches: {switches:?}"
    );
    assert!(
        (switches[3] as f64) < switches[0] as f64 * 0.6,
        "full CoServe should cut switches vs none by >40%: {switches:?}"
    );
}

#[test]
fn ablation_systems_share_identical_work() {
    // The ladder isolates policies: identical streams, executor counts
    // and memory plans, so stage counts must match exactly.
    let reports = ladder_reports(0.1, devices::numa_rtx3080ti());
    let stages: Vec<usize> = reports.iter().map(|r| r.stages_executed).collect();
    assert!(stages.windows(2).all(|w| w[0] == w[1]), "stages {stages:?}");
    let completed: Vec<usize> = reports.iter().map(|r| r.completed).collect();
    assert!(completed.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn eviction_policy_alone_changes_behaviour() {
    // CoServe None vs EM differ only in eviction policy; reports must
    // differ (the policy is actually wired through).
    let reports = ladder_reports(0.1, devices::numa_rtx3080ti());
    assert_ne!(reports[0].switch_events, reports[1].switch_events);
}
