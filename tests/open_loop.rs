//! Open-loop online serving, end to end: deterministic bit-identical
//! reports at multiple offered-load levels, finite tail percentiles,
//! and nonzero admission/drop accounting at overload.

use coserve::prelude::*;

fn online_system() -> (ServingSystem, BoardSpec) {
    let board = BoardSpec::synthetic("online-e2e", 30, 3, 1.2, 40.0, 0.5);
    let model = board.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let config = presets::coserve_online(&device);
    (ServingSystem::new(device, model, config).unwrap(), board)
}

fn run_at(rps: f64, requests: usize, capacity: usize) -> RunReport {
    let (system, board) = online_system();
    let options = OpenLoopOptions::new(ArrivalProcess::poisson(rps))
        .requests(requests)
        .admission(AdmissionControl::with_queue_capacity(capacity));
    serve_open_loop(&system, &board, &options)
}

#[test]
fn two_load_levels_are_deterministic_with_finite_tails() {
    // Acceptance: an open-loop run at two offered-load levels produces
    // deterministic, bit-identical RunReports with finite p50/p95/p99,
    // and nonzero drop/admission counters at overload.
    let low = run_at(30.0, 200, 48);
    let high = run_at(4_000.0, 400, 8);

    for (name, report) in [("low", &low), ("high", &high)] {
        assert_eq!(
            report.completed + report.failed + report.dropped,
            report.submitted,
            "{name}: conservation"
        );
        let lat = report
            .latency_summary()
            .unwrap_or_else(|| panic!("{name}: no completed jobs"));
        assert!(lat.is_finite(), "{name}: non-finite percentiles");
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99, "{name}: ordering");
        // Per-stage ledgers carry finite percentiles too.
        for stage in report.stages() {
            assert!(report.stage_summary(stage).unwrap().is_finite());
        }
    }

    // Underload: everything admitted, nothing dropped.
    assert_eq!(low.dropped, 0);
    assert_eq!(low.admitted, low.submitted);
    assert_eq!(low.completed, low.submitted);

    // Overload: the drop and admission counters are both nonzero.
    assert!(high.dropped > 0, "overload must shed load");
    assert!(high.admitted > 0, "overload must still admit work");
    assert!(high.drop_rate() > 0.0);

    // Bit-identical determinism at both levels.
    assert_eq!(low, run_at(30.0, 200, 48));
    assert_eq!(high, run_at(4_000.0, 400, 8));
}

#[test]
fn bursty_arrivals_stress_tails_more_than_uniform() {
    let (system, board) = online_system();
    let uniform = OpenLoopOptions::new(ArrivalProcess::Uniform {
        interval: SimSpan::from_millis(20),
    })
    .requests(250);
    // Same 50 rps offered load, delivered in bursts.
    let bursty =
        OpenLoopOptions::new(ArrivalProcess::bursty(10.0, 500.0, 220.0, 20.0)).requests(250);
    let u = serve_open_loop(&system, &board, &uniform);
    let b = serve_open_loop(&system, &board, &bursty);
    let (ul, bl) = (u.latency_summary().unwrap(), b.latency_summary().unwrap());
    assert!(
        bl.p99 > ul.p99,
        "bursts must inflate the tail: bursty p99 {:.1} ms vs uniform {:.1} ms",
        bl.p99,
        ul.p99
    );
}

#[test]
fn open_loop_harness_compares_systems_on_identical_streams() {
    let (system, board) = online_system();
    let options = OpenLoopOptions::new(ArrivalProcess::poisson(120.0)).requests(300);
    let stream = open_loop_stream(&system, &board, &options);

    let baseline = ServingSystem::new(
        system.device().clone(),
        system.model().clone(),
        samba_coe(system.device()),
    )
    .unwrap();
    assert_eq!(
        stream,
        open_loop_stream(&baseline, &board, &options),
        "both systems must see byte-identical arrivals"
    );

    let ours = serve_open_loop(&system, &board, &options);
    let theirs = serve_open_loop(&baseline, &board, &options);
    assert_eq!(ours.submitted, theirs.submitted);
    // Both runs are themselves reproducible.
    assert_eq!(theirs, serve_open_loop(&baseline, &board, &options));
}

#[test]
fn slo_attainment_degrades_with_load() {
    let (system, board) = online_system();
    let slo = SimSpan::from_millis(1_500);
    let low = serve_open_loop(
        &system,
        &board,
        &OpenLoopOptions::new(ArrivalProcess::poisson(20.0)).requests(150),
    );
    let high = serve_open_loop(
        &system,
        &board,
        &OpenLoopOptions::new(ArrivalProcess::poisson(2_000.0)).requests(300),
    );
    let low_slo = low.slo_attainment(slo).unwrap();
    let high_slo = high.slo_attainment(slo).unwrap();
    assert!(
        low_slo >= high_slo,
        "SLO attainment should not improve at overload: {low_slo:.2} vs {high_slo:.2}"
    );
    // Attainment is goodput-style: every dropped request is a
    // violation, so it can never exceed 1 - drop_rate.
    assert!(high_slo <= 1.0 - high.drop_rate() + 1e-12);
}
