//! Cluster-scale serving: determinism, scaling, placement and routing
//! behaviour of `coserve-cluster` through the facade crate.

use coserve::prelude::*;

/// A 4-node homogeneous NUMA fleet over 10 GbE.
fn fleet(n: usize, options: ClusterOptions) -> ClusterSystem {
    let task = TaskSpec::a1();
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    ClusterSystem::homogeneous(
        n,
        &device,
        &presets::coserve(&device),
        &model,
        LinkProfile::ethernet_10g(),
        options,
    )
    .unwrap()
}

/// The overload workload the scaling assertions run: Task A1's board at
/// a Poisson rate far beyond one node's capacity, with shallow
/// admission queues so the undersized fleet sheds load.
fn overload_options() -> OpenLoopOptions {
    OpenLoopOptions::new(ArrivalProcess::poisson(4_000.0))
        .requests(500)
        .admission(AdmissionControl::with_queue_capacity(16))
}

#[test]
fn four_node_cluster_reports_are_bit_identical() {
    let run = || {
        let cluster = fleet(4, ClusterOptions::default());
        serve_cluster(&cluster, TaskSpec::a1().board(), &overload_options())
    };
    let (a, b) = (run(), run());
    // Field-level spot checks first, for diagnosable failures…
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.cross_node_hops, b.cross_node_hops);
    assert_eq!(a.fabric_time_total, b.fabric_time_total);
    assert_eq!(a.latency_summary(), b.latency_summary());
    for (na, nb) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(na.switch_events, nb.switch_events);
        assert_eq!(na.job_latencies, nb.job_latencies);
    }
    // …then the whole struct, bit for bit.
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn four_nodes_at_least_double_single_node_throughput_at_overload() {
    let options = overload_options();
    let board = TaskSpec::a1();
    let one = serve_cluster(
        &fleet(1, ClusterOptions::default()),
        board.board(),
        &options,
    );
    let four = serve_cluster(
        &fleet(4, ClusterOptions::default()),
        board.board(),
        &options,
    );
    assert_eq!(one.submitted, four.submitted);
    assert!(
        one.dropped > 0,
        "a single node must shed load at 4000 rps with capacity-16 queues"
    );
    let speedup = four.throughput_ips() / one.throughput_ips();
    assert!(
        speedup >= 2.0,
        "4-node speedup {speedup:.2}x below 2x ({:.1} vs {:.1} img/s)",
        four.throughput_ips(),
        one.throughput_ips()
    );
    assert!(four.drop_rate() < one.drop_rate());
}

#[test]
fn residency_first_beats_round_robin_on_cross_node_hops() {
    let options = overload_options();
    let board = TaskSpec::a1();
    let rf = serve_cluster(
        &fleet(
            4,
            ClusterOptions::default().route(RoutePolicy::ResidencyFirst),
        ),
        board.board(),
        &options,
    );
    let rr = serve_cluster(
        &fleet(4, ClusterOptions::default().route(RoutePolicy::RoundRobin)),
        board.board(),
        &options,
    );
    assert!(
        rf.cross_node_hops < rr.cross_node_hops,
        "residency-first {} hops vs round-robin {}",
        rf.cross_node_hops,
        rr.cross_node_hops
    );
    assert!(rr.cross_node_hops > 0, "locality-blind routing must hop");
    assert!(rr.fabric_time_total > SimSpan::ZERO);
    assert!(rf.fabric_time_total <= rr.fabric_time_total);
}

#[test]
fn cluster_conserves_every_submitted_job() {
    for placement in PlacementStrategy::ALL {
        for route in RoutePolicy::ALL {
            let options = ClusterOptions::default().placement(placement).route(route);
            let report = serve_cluster(
                &fleet(3, options),
                TaskSpec::a1().board(),
                &overload_options(),
            );
            assert_eq!(
                report.completed + report.failed + report.dropped,
                report.submitted,
                "{placement}/{route} lost jobs"
            );
            assert_eq!(report.num_nodes(), 3);
            // Per-node submissions sum to the cluster total.
            let node_submitted: usize = report.nodes.iter().map(|n| n.submitted).sum();
            assert_eq!(node_submitted, report.submitted);
        }
    }
}

#[test]
fn replicated_placement_never_pays_fabric_time() {
    let options = ClusterOptions::default().placement(PlacementStrategy::Replicated);
    let report = serve_cluster(
        &fleet(4, options),
        TaskSpec::a1().board(),
        &overload_options(),
    );
    assert_eq!(report.cross_node_hops, 0);
    assert_eq!(report.fabric_time_total, SimSpan::ZERO);
}

#[test]
fn failure_and_revival_runs_are_bit_identical() {
    // A 4-node run with one mid-run failure and a later revival, under
    // tick-driven dispatch with feedback: the full dynamic runtime must
    // stay deterministic bit for bit.
    let run = || {
        let cluster = fleet(4, ClusterOptions::default());
        let stream = open_loop_stream(
            &ServingSystem::new(
                devices::numa_rtx3080ti(),
                cluster.model().clone(),
                presets::coserve(&devices::numa_rtx3080ti()),
            )
            .unwrap(),
            TaskSpec::a1().board(),
            &overload_options(),
        );
        let horizon = stream
            .last_arrival()
            .saturating_since(coserve::sim::time::SimTime::ZERO);
        let mid = coserve::sim::time::SimTime::ZERO
            + coserve::sim::time::SimSpan::from_millis_f64(horizon.as_millis_f64() / 2.0);
        let back =
            mid + coserve::sim::time::SimSpan::from_millis_f64(horizon.as_millis_f64() / 4.0);
        let options = RuntimeOptions::default()
            .tick(coserve::sim::time::SimSpan::from_millis_f64(
                (horizon.as_millis_f64() / 10.0).max(1.0),
            ))
            .failures(FailureSchedule::new().kill(2, mid).revive(2, back))
            .feedback(FeedbackMode::Corrected)
            .online(AdmissionControl::with_queue_capacity(16), 16);
        cluster.serve_runtime(&stream, &options)
    };
    let (a, b) = (run(), run());
    // Field-level spot checks first, for diagnosable failures…
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.cross_node_hops, b.cross_node_hops);
    assert_eq!(a.dynamics.migrations, b.dynamics.migrations);
    assert_eq!(a.dynamics.migration_bytes, b.dynamics.migration_bytes);
    assert_eq!(a.dynamics.failures, b.dynamics.failures);
    assert_eq!(a.dynamics.ticks, b.dynamics.ticks);
    // …then the whole struct, bit for bit.
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    // The scenario genuinely exercised the dynamic machinery.
    assert_eq!(a.dynamics.failures.len(), 1);
    let failure = a.dynamics.failures[0];
    assert_eq!(failure.node, 2);
    assert!(failure.recovered_at.is_some(), "shard must re-replicate");
    assert!(failure.revived_at.is_some(), "node must come back");
    assert!(a.recovery_time().unwrap() > SimSpan::ZERO);
    // Both the kill re-replication and the revival rebalance migrated
    // experts over the fabric.
    assert!(a.dynamics.plan_versions >= 2);
    assert!(a.dynamics.migrations > 0);
    assert!(
        a.dynamics.migration_bytes > coserve::sim::memory::Bytes::ZERO,
        "migration traffic must be charged"
    );
    assert_eq!(
        a.completed + a.failed + a.dropped,
        a.submitted,
        "jobs conserved through kill + revival"
    );
}

#[test]
fn closed_loop_cluster_completes_everything_and_utilizes_nodes() {
    let cluster = fleet(2, ClusterOptions::default());
    let task = TaskSpec::a1().scaled(0.08); // 200 requests
    let report = cluster.serve(&task.stream(cluster.model()));
    assert_eq!(report.completed, 200);
    assert_eq!(report.dropped, 0);
    let utilization = report.node_utilization();
    assert_eq!(utilization.len(), 2);
    assert!(
        utilization.iter().all(|&u| u > 0.0),
        "both nodes must do work: {utilization:?}"
    );
    assert!(report.summary_line().contains("2 nodes"));
}
