//! Reproducibility: identical configurations must produce bit-identical
//! runs — the property every comparison in the evaluation rests on.

use coserve::prelude::*;

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let task = TaskSpec::a1().scaled(0.08);
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = task.stream(&model);
        let config = presets::coserve(&device);
        Engine::new(&device, &model, &perf, &config)
            .unwrap()
            .run(&stream)
    };
    assert_eq!(run(), run());
}

/// The `coserve-sim` docs claim runs are deterministic "bit for bit":
/// the same `TaskSpec` served twice on fresh `ServingSystem`s (separate
/// profiling passes, separate engines, separate streams) must produce
/// identical `RunReport`s, down to individual latency samples and switch
/// events.
#[test]
fn fresh_serving_systems_reproduce_reports_bit_for_bit() {
    let run = || {
        let task = TaskSpec::a1().scaled(0.08);
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let config = presets::coserve(&device);
        let system = ServingSystem::new(device, model, config).unwrap();
        let stream = task.stream(system.model());
        system.serve(&stream)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency_summary(), b.latency_summary());
    assert_eq!(a.sched_summary(), b.sched_summary());
    assert_eq!(a.expert_switches(), b.expert_switches());
    assert_eq!(a.switch_events, b.switch_events);
    // And the whole struct, in case a field is added later and missed above.
    assert_eq!(a, b);
}

/// Tracing rides the same guarantee: two fresh traced runs of the same
/// configuration must export byte-identical Perfetto documents, and
/// the traced report must equal the untraced one (the tracer observes,
/// it never perturbs).
#[test]
fn exported_trace_is_bit_identical_across_runs() {
    let traced_run = || {
        let task = TaskSpec::a1().scaled(0.08);
        let model = task.build_model().unwrap();
        let device = devices::numa_rtx3080ti();
        let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
        let stream = task.stream(&model);
        let config = presets::coserve(&device);
        let engine = Engine::new(&device, &model, &perf, &config).unwrap();
        let untraced = engine.run(&stream);
        let mut session = engine.session(stream.name());
        session.set_tracer(Box::new(coserve::trace::RingTracer::new()));
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        let events = session.tracer_mut().drain();
        assert_eq!(untraced, session.into_report(), "tracing perturbed the run");
        coserve::trace::chrome_trace_json(&events)
    };
    let (a, b) = (traced_run(), traced_run());
    assert!(!a.is_empty() && a.contains("\"stage-done\""));
    assert_eq!(a, b, "exported trace differs between identical runs");
}

#[test]
fn different_seeds_change_the_schedule() {
    let task = TaskSpec::a1().scaled(0.08);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let config = presets::coserve(&device);
    let engine = Engine::new(&device, &model, &perf, &config).unwrap();
    // Different workload seeds → different streams → different runs.
    let board = task.board().clone();
    let s1 = RequestStream::generate(
        "s1",
        &board,
        &model,
        200,
        SimSpan::from_millis(4),
        StreamOrder::Iid,
        1,
    );
    let s2 = RequestStream::generate(
        "s2",
        &board,
        &model,
        200,
        SimSpan::from_millis(4),
        StreamOrder::Iid,
        2,
    );
    let r1 = engine.run(&s1);
    let r2 = engine.run(&s2);
    assert_ne!(r1.switch_events, r2.switch_events);
}

#[test]
fn profiler_output_is_stable() {
    let task = TaskSpec::b1().scaled(0.02);
    let model = task.build_model().unwrap();
    let device = devices::uma_apple_m2();
    let p1 = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let p2 = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    assert_eq!(p1, p2);
}

#[test]
fn autotune_is_deterministic() {
    use coserve::core::autotune;
    let task = TaskSpec::a1().scaled(0.05);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let sample = task.sample(120).stream(&model);
    let opts = autotune::WindowSearchOptions {
        max_trials: 4,
        ..autotune::WindowSearchOptions::default()
    };
    let a = autotune::tune(&device, &model, &perf, &sample, opts);
    let b = autotune::tune(&device, &model, &perf, &sample, opts);
    assert_eq!(a, b);
}

#[test]
fn reports_are_independent_of_construction_order() {
    // Running system A then B must equal running B then A (no hidden
    // global state).
    let task = TaskSpec::a1().scaled(0.05);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    let coserve_cfg = presets::coserve(&device);
    let samba_cfg = samba_coe(&device);

    let co_first = Engine::new(&device, &model, &perf, &coserve_cfg)
        .unwrap()
        .run(&stream);
    let sa_second = Engine::new(&device, &model, &perf, &samba_cfg)
        .unwrap()
        .run(&stream);

    let sa_first = Engine::new(&device, &model, &perf, &samba_cfg)
        .unwrap()
        .run(&stream);
    let co_second = Engine::new(&device, &model, &perf, &coserve_cfg)
        .unwrap()
        .run(&stream);

    assert_eq!(co_first, co_second);
    assert_eq!(sa_first, sa_second);
}
