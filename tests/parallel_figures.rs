//! The parallel figure harness's determinism guarantee: fanning sweep
//! points out over `COSERVE_JOBS` worker threads must produce artifacts
//! **byte-identical** to a serial run. fig20 and fig21 are the heaviest
//! sweeps (open-loop load curve, cluster scaling matrix), so they pin
//! the guarantee for both CSV tables and JSON artifacts.
//!
//! Each integration-test binary is its own process, so setting
//! `COSERVE_SCALE`/`COSERVE_JOBS` here cannot leak into other test
//! binaries. All width flips happen inside a single test function, so
//! there is no intra-process race either. fig22 (the dynamic-runtime
//! failure sweep) rides along: its cells run whole cluster runtimes,
//! so width-independence also covers the new control loop.

use coserve_bench::{figures, sweep};

fn scale_down() {
    // Safe pre-2024 edition; this binary owns its process environment.
    std::env::set_var("COSERVE_SCALE", "0.05");
    std::env::set_var(
        "COSERVE_OUT_DIR",
        std::env::temp_dir().join("coserve-parfig"),
    );
}

#[test]
fn parallel_sweeps_are_byte_identical_to_serial() {
    scale_down();

    std::env::set_var("COSERVE_JOBS", "1");
    assert_eq!(sweep::jobs(), 1);
    let fig20_serial = figures::fig20_latency_vs_load().to_csv();
    let (t21, artifacts) = figures::fig21_cluster_scaling();
    let fig21_serial = t21.to_csv();
    let artifacts_serial = artifacts;
    let (t22, artifacts22) = figures::fig22_failure_recovery();
    let fig22_serial = t22.to_csv();
    let artifacts22_serial = artifacts22;
    // fig23 fans each fleet's nodes over the sweep workers; its CSV is
    // simulation-only and must be width-independent. (Its JSON artifact
    // is deliberately wall-clock — machine-dependent by design — so it
    // is not compared here.)
    let (t23, _) = figures::fig23_engine_scale();
    let fig23_serial = t23.to_csv();

    std::env::set_var("COSERVE_JOBS", "4");
    assert_eq!(sweep::jobs(), 4);
    let fig20_wide = figures::fig20_latency_vs_load().to_csv();
    let (t21w, artifacts_wide) = figures::fig21_cluster_scaling();
    let fig21_wide = t21w.to_csv();
    let (t22w, artifacts22_wide) = figures::fig22_failure_recovery();
    let fig22_wide = t22w.to_csv();
    let (t23w, _) = figures::fig23_engine_scale();
    let fig23_wide = t23w.to_csv();

    std::env::remove_var("COSERVE_JOBS");

    assert_eq!(
        fig23_serial, fig23_wide,
        "fig23 CSV must not depend on sweep width"
    );

    assert_eq!(
        fig22_serial, fig22_wide,
        "fig22 CSV must not depend on sweep width"
    );
    assert_eq!(artifacts22_serial, artifacts22_wide);
    assert_eq!(artifacts22_serial.len(), 1);

    assert_eq!(
        fig20_serial, fig20_wide,
        "fig20 CSV must not depend on sweep width"
    );
    assert_eq!(
        fig21_serial, fig21_wide,
        "fig21 CSV must not depend on sweep width"
    );
    assert_eq!(
        artifacts_serial.len(),
        artifacts_wide.len(),
        "fig21 must emit the same JSON artifact set at any width"
    );
    for ((stem_s, json_s), (stem_w, json_w)) in artifacts_serial.iter().zip(artifacts_wide.iter()) {
        assert_eq!(stem_s, stem_w, "artifact order must be canonical");
        assert_eq!(json_s, json_w, "{stem_s} JSON must be byte-identical");
    }
    // Sanity: the sweeps produced real content.
    assert!(fig20_serial.lines().count() > 1);
    assert_eq!(artifacts_serial.len(), 2);
}
