//! Fault-injection invariants through the facade crate: a disabled (or
//! armed-but-empty) `FaultPlan` must leave every report bit-identical
//! to a run that never heard of faults, and when faults do fire the
//! `FaultLedger` must partition injected work exactly into recovered
//! and lost.

use coserve::prelude::*;
use coserve_faults::{FaultPlan, FaultWindow, RetryPolicy};

/// Builds the A1 engine cell and hands a fresh session plus its stream
/// to `f`. `Engine` borrows its inputs, so the scaffolding lives here.
fn with_session<T>(f: impl FnOnce(EngineSession, &RequestStream) -> T) -> T {
    let task = TaskSpec::a1().scaled(0.08);
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    let config = presets::coserve(&device);
    let engine = Engine::new(&device, &model, &perf, &config).unwrap();
    f(engine.session(stream.name()), &stream)
}

fn run_with(plan: Option<(FaultPlan, RetryPolicy)>) -> RunReport {
    with_session(|mut session, stream| {
        if let Some((plan, retry)) = plan {
            session.set_faults(plan, retry);
        }
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        session.into_report()
    })
}

/// Arming `FaultPlan::disabled()` must be indistinguishable from never
/// calling `set_faults` at all.
#[test]
fn disabled_plan_leaves_engine_reports_bit_identical() {
    let baseline = run_with(None);
    let armed = run_with(Some((FaultPlan::disabled(), RetryPolicy::none())));
    assert_eq!(baseline, armed);
}

/// A seeded plan with no fault kinds configured sits on the hot path
/// (every load consults it) but must never perturb the run — and its
/// ledger must stay empty.
#[test]
fn empty_seeded_plan_is_inert_and_its_ledger_stays_empty() {
    let baseline = run_with(None);
    let armed = with_session(|mut session, stream| {
        session.set_faults(
            FaultPlan::seeded(9),
            RetryPolicy::retries(4, SimSpan::from_micros(50)),
        );
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        assert!(session.fault_ledger().is_empty());
        assert_eq!(session.fault_ledger().injected(), 0);
        session.into_report()
    });
    assert_eq!(baseline, armed);
}

/// The exported Perfetto document must also be byte-identical: a
/// disabled plan may not add, drop, or reorder a single trace event.
#[test]
fn disabled_plan_leaves_exported_traces_bit_identical() {
    let traced = |armed: bool| {
        with_session(|mut session, stream| {
            if armed {
                session.set_faults(FaultPlan::disabled(), RetryPolicy::none());
            }
            session.set_tracer(Box::new(coserve::trace::RingTracer::new()));
            for job in stream.jobs() {
                session.submit(job.arrival, &job.stages).unwrap();
            }
            session.pump();
            coserve::trace::chrome_trace_json(&session.tracer_mut().drain())
        })
    };
    let (baseline, armed) = (traced(false), traced(true));
    assert!(!baseline.is_empty() && baseline.contains("\"stage-done\""));
    assert_eq!(baseline, armed);
}

/// Cluster runtime: an armed-but-empty plan must reproduce the
/// default-options report bit for bit, JSON and all.
#[test]
fn empty_plan_leaves_cluster_reports_bit_identical() {
    use coserve::cluster::runtime::RuntimeOptions;
    let task = TaskSpec::a1();
    let model = task.build_model().unwrap();
    let device = devices::numa_rtx3080ti();
    let cluster = ClusterSystem::homogeneous(
        4,
        &device,
        &presets::coserve(&device),
        &model,
        LinkProfile::ethernet_10g(),
        ClusterOptions::default(),
    )
    .unwrap();
    let stream = RequestStream::generate_open_loop(
        "faults-off",
        task.board(),
        &model,
        96,
        ArrivalProcess::poisson(200.0),
        StreamOrder::Iid,
        7,
    );
    let baseline = cluster.serve_runtime(&stream, &RuntimeOptions::default());
    let armed = cluster.serve_runtime(
        &stream,
        &RuntimeOptions::default().faults(FaultPlan::seeded(3)),
    );
    assert_eq!(baseline, armed);
    assert_eq!(baseline.to_json(), armed.to_json());
    assert!(armed.dynamics.faults.is_empty());
}

/// When loads do fail, the ledger partitions them exactly: every
/// injected failure is either recovered by a retry or exhausted (and
/// exhausted jobs are exactly the report's failed jobs).
#[test]
fn ledger_partitions_injected_load_faults_exactly() {
    let (ledger, report) = with_session(|mut session, stream| {
        session.set_faults(
            FaultPlan::seeded(24).with_expert_load(0.3, 0.1, 3.0, FaultWindow::ALWAYS),
            RetryPolicy::retries(8, SimSpan::from_micros(50)),
        );
        for job in stream.jobs() {
            session.submit(job.arrival, &job.stages).unwrap();
        }
        session.pump();
        let ledger = *session.fault_ledger();
        (ledger, session.into_report())
    });
    assert!(ledger.injected() > 0, "the plan must actually fire");
    assert_eq!(
        ledger.load_faults,
        ledger.load_recovered + ledger.load_exhausted,
        "every load fault is recovered or exhausted, never both or neither"
    );
    assert_eq!(ledger.load_exhausted, report.failed as u64);
    assert!(ledger.retries >= ledger.load_recovered);
    assert_eq!(
        ledger.injected(),
        ledger.load_faults + ledger.slow_loads,
        "an engine-only run injects nothing but load faults"
    );
    if ledger.recovered() > 0 {
        let (first, last) = (
            ledger.first_fault.expect("faults fired"),
            ledger.last_recovery.expect("recoveries happened"),
        );
        assert!(first <= last);
        assert_eq!(ledger.recovery_span(), Some(last.saturating_since(first)));
    }
}
