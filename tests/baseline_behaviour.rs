//! Behavioural contracts of the Samba-CoE baselines (paper §5.1).

use coserve::prelude::*;

fn context(scale: f64, device: &DeviceProfile) -> (CoeModel, PerfMatrix, RequestStream) {
    let task = TaskSpec::a1().scaled(scale);
    let model = task.build_model().unwrap();
    let perf = Profiler::with_defaults().profile(device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    (model, perf, stream)
}

#[test]
fn parallel_beats_plain_samba() {
    for device in devices::paper_devices() {
        let (model, perf, stream) = context(0.15, &device);
        let plain = Engine::new(&device, &model, &perf, &samba_coe(&device))
            .unwrap()
            .run(&stream);
        let parallel = Engine::new(&device, &model, &perf, &samba_coe_parallel(&device))
            .unwrap()
            .run(&stream);
        assert!(
            parallel.throughput_ips() > plain.throughput_ips(),
            "{}: parallel {:.1} <= plain {:.1}",
            device.name(),
            parallel.throughput_ips(),
            plain.throughput_ips()
        );
    }
}

#[test]
fn lru_beats_fifo_replacement() {
    // Figure 13: Samba-CoE (LRU) consistently outperforms the FIFO
    // variant.
    let device = devices::numa_rtx3080ti();
    let (model, perf, stream) = context(0.2, &device);
    let lru = Engine::new(&device, &model, &perf, &samba_coe(&device))
        .unwrap()
        .run(&stream);
    let fifo = Engine::new(&device, &model, &perf, &samba_coe_fifo(&device))
        .unwrap()
        .run(&stream);
    assert!(
        lru.expert_switches() <= fifo.expert_switches(),
        "LRU {} switches vs FIFO {}",
        lru.expert_switches(),
        fifo.expert_switches()
    );
    assert!(lru.throughput_ips() >= fifo.throughput_ips() * 0.98);
}

#[test]
fn samba_uses_cpu_cache_on_numa_only() {
    let numa = devices::numa_rtx3080ti();
    let (model, perf, stream) = context(0.15, &numa);
    let r = Engine::new(&numa, &model, &perf, &samba_coe(&numa))
        .unwrap()
        .run(&stream);
    assert!(
        r.switches_from_cpu() > 0,
        "NUMA Samba should hit the CPU-memory cache tier"
    );

    let uma = devices::uma_apple_m2();
    let (model, perf, stream) = context(0.15, &uma);
    let r = Engine::new(&uma, &model, &perf, &samba_coe(&uma))
        .unwrap()
        .run(&stream);
    assert_eq!(
        r.switches_from_cpu(),
        0,
        "UMA Samba loads directly from SSD (no tiered cache)"
    );
}

#[test]
fn plain_samba_runs_one_gpu_executor() {
    let device = devices::numa_rtx3080ti();
    let (model, perf, stream) = context(0.05, &device);
    let r = Engine::new(&device, &model, &perf, &samba_coe(&device))
        .unwrap()
        .run(&stream);
    assert_eq!(r.executors.len(), 1);
    assert_eq!(r.executors[0].processor, ProcessorKind::Gpu);
    // All work went through that executor.
    assert_eq!(r.executors[0].items as usize, r.stages_executed);
}

#[test]
fn fcfs_keeps_arrival_order_within_queue() {
    // With FCFS + a single executor and batching bounded by adjacency,
    // completions follow arrival order per stage-0 requests.
    let device = devices::numa_rtx3080ti();
    let (model, perf, stream) = context(0.03, &device);
    let r = Engine::new(&device, &model, &perf, &samba_coe(&device))
        .unwrap()
        .run(&stream);
    assert_eq!(r.completed, stream.len());
    // Sojourn latencies grow roughly with queue position under FCFS on
    // a switch-bound backlog: the last job waits longer than the first.
    let first = r.job_latencies.first().unwrap();
    let last = r.job_latencies.last().unwrap();
    assert!(last > first);
}

#[test]
fn suite_runs_all_five_systems() {
    let device = devices::numa_rtx3080ti();
    let task = TaskSpec::a1().scaled(0.06);
    let model = task.build_model().unwrap();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let sample = task.sample(80).stream(&model);
    let (systems, tuned) = coserve::baselines::suite::evaluation_suite(
        &device,
        &model,
        &perf,
        &sample,
        WindowSearchOptions {
            max_trials: 3,
            ..WindowSearchOptions::default()
        },
    );
    assert_eq!(
        systems.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
        coserve::baselines::suite::suite_names()
    );
    assert!(!tuned.executor_trials.is_empty());
    let stream = task.stream(&model);
    for config in &systems {
        let r = Engine::new(&device, &model, &perf, config)
            .unwrap()
            .run(&stream);
        assert_eq!(r.completed, stream.len(), "{} dropped jobs", config.name);
    }
}
