//! End-to-end integration: workload generation → offline profiling →
//! serving → reporting, across crates.

use coserve::prelude::*;

/// A scaled-down Task A1 plus everything needed to serve it.
fn context(scale: f64) -> (DeviceProfile, CoeModel, PerfMatrix, RequestStream) {
    let task = TaskSpec::a1().scaled(scale);
    let model = task.build_model().expect("board A validates");
    let device = devices::numa_rtx3080ti();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let stream = task.stream(&model);
    (device, model, perf, stream)
}

#[test]
fn coserve_serves_task_a1_to_completion() {
    let (device, model, perf, stream) = context(0.1);
    let config = presets::coserve(&device);
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&stream);
    assert_eq!(report.submitted, 250);
    assert_eq!(report.completed, 250);
    assert_eq!(report.failed, 0);
    // Two-stage jobs executed more stages than jobs.
    assert!(report.stages_executed > 250);
    assert!(report.throughput_ips() > 1.0);
    // Accounting is self-consistent.
    let exec_switches: u64 = report.executors.iter().map(|e| e.switches).sum();
    assert_eq!(exec_switches, report.expert_switches());
    let exec_items: u64 = report.executors.iter().map(|e| e.items).sum();
    assert_eq!(exec_items as usize, report.stages_executed);
    assert_eq!(report.job_latencies.len(), report.completed);
}

#[test]
fn coserve_beats_samba_on_throughput_and_switches() {
    let (device, model, perf, stream) = context(0.5);
    let coserve = presets::coserve(&device);
    let samba = samba_coe(&device);
    let co = Engine::new(&device, &model, &perf, &coserve)
        .unwrap()
        .run(&stream);
    let sa = Engine::new(&device, &model, &perf, &samba)
        .unwrap()
        .run(&stream);
    assert!(
        co.throughput_ips() > 2.0 * sa.throughput_ips(),
        "CoServe {:.1} img/s vs Samba {:.1} img/s",
        co.throughput_ips(),
        sa.throughput_ips()
    );
    // At this scale the cold-load floor (first use of each distinct
    // expert) bounds both systems; CoServe must still cut total
    // switches substantially.
    assert!(
        co.expert_switches() * 4 < sa.expert_switches() * 3,
        "CoServe {} switches vs Samba {}",
        co.expert_switches(),
        sa.expert_switches()
    );
}

#[test]
fn uma_device_serves_without_staging_cache() {
    let task = TaskSpec::b1().scaled(0.08);
    let model = task.build_model().unwrap();
    let device = devices::uma_apple_m2();
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Declared);
    let config = presets::coserve(&device);
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&task.stream(&model));
    assert_eq!(report.completed, 200);
    // UMA loads always come from SSD (no cache tier, §5.1).
    assert_eq!(report.switches_from_cpu(), 0);
    assert_eq!(report.switches_from_ssd(), report.expert_switches());
}

#[test]
fn serving_system_facade_matches_engine() {
    let (device, model, perf, stream) = context(0.05);
    let config = presets::coserve(&device);
    let direct = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&stream);
    let system = ServingSystem::with_matrix(device, model, perf, config).unwrap();
    let via_facade = system.serve(&stream);
    assert_eq!(direct, via_facade);
}

#[test]
fn shared_detection_experts_run_as_second_stages() {
    let (device, model, perf, stream) = context(0.1);
    let config = presets::coserve(&device);
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&stream);
    // The stream pre-rolled detection stages; the engine must execute
    // exactly those.
    assert_eq!(report.stages_executed, stream.total_stages());
    // Detection experts (subsequent in the graph) actually executed.
    let det_switches = report
        .switch_events
        .iter()
        .filter(|ev| model.graph().is_subsequent(ev.expert))
        .count();
    let det_resident = report.executors.iter().any(|e| e.pool_peak > Bytes::ZERO);
    assert!(det_switches > 0 || det_resident);
}

#[test]
fn timeline_analysis_matches_switch_ledger() {
    let (device, model, perf, stream) = context(0.1);
    let config = presets::coserve(&device);
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&stream);
    let timeline = Timeline::from_report(&report, SimSpan::from_secs(1));
    assert_eq!(timeline.total_switches(), report.expert_switches());
    let ssd_total: u64 = timeline
        .buckets()
        .iter()
        .map(|b| u64::from(b.from_ssd))
        .sum();
    assert_eq!(ssd_total, report.switches_from_ssd());
    // Serving warms up with cold loads and settles afterwards.
    let warmup = timeline.warmup_end(0.5);
    assert!(warmup.is_some());
}

#[test]
fn llm_scenario_end_to_end() {
    let model = coserve::workload::llm::build_llm_coe(6, 0.5).unwrap();
    let mut device = devices::numa_rtx3080ti();
    coserve::workload::llm::install_llm_kernels(&mut device);
    let stream = coserve::workload::llm::llm_stream(&model, 6, 120, SimSpan::from_millis(200), 11);
    let perf = Profiler::with_defaults().profile(&device, &model, UsageSource::Empirical(&stream));
    let config = presets::coserve_with(&device, "CoServe", 2, 1, None);
    let report = Engine::new(&device, &model, &perf, &config)
        .unwrap()
        .run(&stream);
    assert_eq!(report.completed, 120);
    assert!(
        report.expert_switches() > 0,
        "9 large experts cannot all fit"
    );
}
