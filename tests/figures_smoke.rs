//! Smoke tests for the figure harness: every table/figure generator
//! runs on a scaled-down workload and produces sane rows.
//!
//! Each integration-test binary is its own process, so setting
//! `COSERVE_SCALE` here cannot leak into other test binaries; the tests
//! in this file all want the same value.

use coserve_bench::figures;

fn scale_down() {
    // Safe pre-2024 edition; all tests in this binary set the same value.
    std::env::set_var("COSERVE_SCALE", "0.05");
    std::env::set_var(
        "COSERVE_OUT_DIR",
        std::env::temp_dir().join("coserve-figsmoke"),
    );
}

#[test]
fn table1_lists_both_devices() {
    scale_down();
    let t = figures::table1_hardware();
    assert_eq!(t.len(), 5);
    let csv = t.to_csv();
    assert!(csv.contains("RTX3080Ti"));
    assert!(csv.contains("Apple M2"));
}

#[test]
fn fig01_shares_match_paper_bands() {
    scale_down();
    let t = figures::fig01_switch_share();
    assert_eq!(t.len(), 12); // 2 devices × 2 paths × 3 archs
    let csv = t.to_csv();
    for line in csv.lines().skip(1) {
        let share: f64 = line.split(',').next_back().unwrap().parse().unwrap();
        assert!(
            (55.0..100.0).contains(&share),
            "share {share} out of band: {line}"
        );
        if line.contains("SSD") {
            assert!(share > 85.0, "SSD share too low: {line}");
        }
    }
}

#[test]
fn fig05_06_12_sweeps_have_full_batch_range() {
    scale_down();
    let t5 = figures::fig05_avg_latency();
    assert_eq!(t5.len(), 2 * 2 * 32);
    let t6 = figures::fig06_mem_footprint();
    assert_eq!(t6.len(), 2 * 2 * 32);
    let t12 = figures::fig12_exec_latency();
    assert_eq!(t12.len(), 2);
    assert_eq!(t12[0].len(), 2 * 2 * 2 * 32);
    assert_eq!(t12[1].len(), 8);
}

#[test]
fn fig11_cdf_is_monotone() {
    scale_down();
    let tables = figures::fig11_usage_cdf();
    assert_eq!(tables.len(), 2);
    let csv = tables[0].to_csv();
    let mut prev = 0.0f64;
    for line in csv.lines().skip(1) {
        let v: f64 = line.split(',').next_back().unwrap().parse().unwrap();
        assert!(v + 1e-12 >= prev, "CDF not monotone at {line}");
        prev = v;
    }
    assert!(prev > 0.99, "CDF must reach 1, got {prev}");
}

#[test]
fn fig13_14_suite_produces_all_cells() {
    scale_down();
    let (thr, sw) = figures::fig13_14_throughput_and_switches();
    // 2 devices × 4 tasks × 5 systems.
    assert_eq!(thr.len(), 40);
    assert_eq!(sw.len(), 40);
    let csv = thr.to_csv();
    assert!(csv.contains("CoServe Best"));
    assert!(csv.contains("Samba-CoE Parallel"));
}

#[test]
fn fig15_16_ablation_produces_all_cells() {
    scale_down();
    let (thr, sw) = figures::fig15_16_ablation();
    // 2 devices × 4 tasks × 4 ladder steps.
    assert_eq!(thr.len(), 32);
    assert_eq!(sw.len(), 32);
}

#[test]
fn fig17_18_19_produce_rows() {
    scale_down();
    let t17 = figures::fig17_executors();
    assert_eq!(t17.len(), 2 * 2 * 7);
    let t18 = figures::fig18_window_search();
    assert!(t18.len() >= 6, "window search produced too few rows");
    let t19 = figures::fig19_overhead();
    assert_eq!(t19.len(), 4);
    // Scheduling latency must stay below inference latency (Figure 19's
    // conclusion) in every row.
    for line in t19.to_csv().lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let sched: f64 = cells[2].parse().unwrap();
        let gap: f64 = cells[5].parse().unwrap();
        assert!(sched < 60.0, "scheduling latency implausible: {line}");
        assert!(
            gap < 25.0,
            "scheduling overhead too large at small scale: {line}"
        );
    }
}

#[test]
fn fig21_cluster_scaling_shows_speedup_and_locality() {
    scale_down();
    let (t, artifacts) = figures::fig21_cluster_scaling();
    // 1 baseline + 4 placements at 2 nodes + 4×3 matrix at 4 nodes.
    assert_eq!(t.len(), 17);
    let csv = t.to_csv();
    let mut speedup_4n_ua_rf = None;
    let mut hops_rf = None;
    let mut hops_rr = None;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let speedup: f64 = cells[5].parse().unwrap();
        let hops: u64 = cells[7].parse().unwrap();
        assert!(speedup.is_finite() && speedup >= 0.0);
        if cells[0] == "4" && cells[1] == "usage-aware" {
            match cells[2] {
                "residency-first" => {
                    speedup_4n_ua_rf = Some(speedup);
                    hops_rf = Some(hops);
                }
                "round-robin" => hops_rr = Some(hops),
                _ => {}
            }
        }
        // Replicated placement can never cross nodes.
        if cells[1] == "replicated" {
            assert_eq!(hops, 0, "replicated placement crossed nodes: {line}");
        }
    }
    let speedup = speedup_4n_ua_rf.expect("4-node usage-aware residency-first row");
    assert!(
        speedup >= 2.0,
        "4 nodes must at least double 1-node throughput at overload, got {speedup:.2}x:\n{csv}"
    );
    let (rf, rr) = (hops_rf.unwrap(), hops_rr.unwrap());
    assert!(
        rf < rr,
        "residency-first must beat round-robin on hops: {rf} vs {rr}\n{csv}"
    );
    // The JSON artifacts are emitted and structurally sound.
    assert_eq!(artifacts.len(), 2);
    for (stem, json) in &artifacts {
        assert!(stem.starts_with("fig21"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
    assert!(artifacts[1].1.contains("\"num_nodes\":4"));
}

#[test]
fn fig22_failure_recovery_bounds_recovery_and_rewards_feedback() {
    scale_down();
    let (t, artifacts) = figures::fig22_failure_recovery();
    // 2 kill timings × 2 replacement policies × 2 feedback modes, plus
    // the 2 failure-free drift-only rows.
    assert_eq!(t.len(), 10);
    let csv = t.to_csv();
    let mut static_orphan_drops = Vec::new();
    // p95 per (scenario, feedback) for the re-replicating rows.
    let mut rereplicate_p95: Vec<(String, String, f64)> = Vec::new();
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let (scenario, replacement, feedback) = (cells[0], cells[1], cells[2]);
        let orphan_pct: f64 = cells[5].parse().unwrap();
        let recovery = cells[6];
        let migration_mib: f64 = cells[7].parse().unwrap();
        let p95: f64 = cells[8].parse().unwrap();
        assert!(p95.is_finite() && p95 > 0.0, "bad p95: {line}");
        if replacement == "static" && scenario.starts_with("kill") {
            // Claim 1a: a static placement never recovers — orphaned
            // chains are rejected until the end of the run.
            assert_eq!(recovery, "inf", "static placement recovered? {line}");
            assert!(orphan_pct > 0.0, "static kill must orphan chains: {line}");
            assert_eq!(migration_mib, 0.0, "static must not migrate: {line}");
            static_orphan_drops.push(orphan_pct);
        }
        if replacement == "re-replicate" && scenario.starts_with("kill") {
            // Claim 1b: re-replication bounds recovery — finite recovery
            // time, migration traffic visibly charged, no orphan drops.
            let recovery_ms: f64 = recovery
                .parse()
                .unwrap_or_else(|_| panic!("re-replication must report finite recovery: {line}"));
            assert!(recovery_ms > 0.0, "recovery must take real time: {line}");
            assert!(
                migration_mib > 0.0,
                "migration bytes must be charged: {line}"
            );
            assert_eq!(
                orphan_pct, 0.0,
                "re-replication must leave no orphans: {line}"
            );
            rereplicate_p95.push((scenario.to_string(), feedback.to_string(), p95));
        }
    }
    assert_eq!(static_orphan_drops.len(), 4);
    // Claim 2: under the drifted workload, feedback-corrected dispatch
    // beats open-loop estimates on p95 in the post-failure regime.
    for scenario in ["kill@25%", "kill@50%"] {
        let p95_of = |mode: &str| {
            rereplicate_p95
                .iter()
                .find(|(s, f, _)| s == scenario && f == mode)
                .map(|(_, _, p)| *p)
                .unwrap_or_else(|| panic!("missing {scenario}/{mode} row:\n{csv}"))
        };
        let (open, fed) = (p95_of("open-loop"), p95_of("feedback"));
        assert!(
            fed < open,
            "{scenario}: feedback p95 {fed:.1} must beat open-loop {open:.1}:\n{csv}"
        );
    }
    // The artifact is the recovered feedback-on report: migration
    // traffic on the fabric, a recovered failure, well-formed JSON.
    assert_eq!(artifacts.len(), 1);
    let (stem, json) = &artifacts[0];
    assert_eq!(stem, "fig22_failure_recovery_report");
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"unrecovered_failure\":false"));
    assert!(!json.contains("\"migration_bytes\":0,"));
    assert!(json.contains("\"ticks\":[{"));
}

#[test]
fn fig23_engine_scale_serves_every_request_at_every_fleet_size() {
    scale_down();
    let (t, artifacts) = figures::fig23_engine_scale();
    // Weak-scaling fleets: 1, 8 and 64 nodes.
    assert_eq!(t.len(), 3);
    let csv = t.to_csv();
    let mut prev_requests = 0usize;
    let mut last_nodes = 0usize;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let nodes: usize = cells[0].parse().unwrap();
        let requests: usize = cells[1].parse().unwrap();
        let completed: usize = cells[2].parse().unwrap();
        let stages: usize = cells[3].parse().unwrap();
        let events: usize = cells[4].parse().unwrap();
        let makespan_s: f64 = cells[5].parse().unwrap();
        // Claim 1: the engine serves the whole open-loop trace — no
        // request is lost at any fleet size.
        assert_eq!(completed, requests, "every request must complete: {line}");
        assert!(
            stages >= requests,
            "each job has at least one stage: {line}"
        );
        assert!(
            events >= requests,
            "the calendar pops at least one event per job: {line}"
        );
        assert!(makespan_s > 0.0, "fleet must take simulated time: {line}");
        // Claim 2: weak scaling — per-node load is fixed, so the
        // request count grows with the fleet.
        assert!(requests >= nodes * 500, "per-node floor violated: {line}");
        assert!(requests > prev_requests, "fleet rows must grow: {line}");
        prev_requests = requests;
        last_nodes = nodes;
    }
    assert_eq!(last_nodes, 64, "the headline fleet is 64 nodes:\n{csv}");
    // The wall-clock artifact is machine-dependent but well-formed.
    assert_eq!(artifacts.len(), 1);
    let (stem, json) = &artifacts[0];
    assert_eq!(stem, "fig23_engine_scale_wall");
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"fleets\":[{"));
    assert!(json.contains("\"wall_rps\":"));
    assert!(json.contains("\"nodes\":64"));
}

#[test]
fn fig24_fault_matrix_recovers_finitely_and_beats_giving_up() {
    scale_down();
    let (t, artifacts) = figures::fig24_fault_matrix();
    // 4 load cells + 3 link cells + 2 node cells + 4 conn cells.
    assert_eq!(t.len(), 13);
    let csv = t.to_csv();
    let mut goodput: Vec<(String, String, String, f64)> = Vec::new();
    let mut injected_total = 0u64;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let (fault, intensity, recovery) = (cells[0], cells[1], cells[2]);
        let injected: u64 = cells[4].parse().unwrap();
        let lost: u64 = cells[7].parse().unwrap();
        injected_total += injected;
        // Claim 1: wherever a recovery policy is armed and faults
        // actually fired, recovery completes in finite simulated time
        // and no work is lost.
        if recovery != "none" && injected > 0 {
            let recovery_ms: f64 = cells[9]
                .parse()
                .unwrap_or_else(|_| panic!("recovery must be finite: {line}"));
            assert!(recovery_ms > 0.0, "recovery must take real time: {line}");
            assert_eq!(lost, 0, "recovery must not lose jobs: {line}");
        }
        // Claim 2: giving up loses jobs and never recovers.
        if recovery == "none" {
            assert!(lost > 0, "no-recovery cells must lose jobs: {line}");
            assert_eq!(cells[9], "inf", "no-recovery never recovers: {line}");
        }
        goodput.push((
            fault.to_string(),
            intensity.to_string(),
            recovery.to_string(),
            cells[3].parse().unwrap(),
        ));
    }
    assert!(injected_total > 0, "the matrix must inject faults:\n{csv}");
    // Claim 3: at every (fault, intensity) that has a no-recovery row,
    // every recovery policy's goodput beats giving up.
    let mut compared = 0;
    for (fault, intensity, recovery, none_g) in &goodput {
        if recovery != "none" {
            continue;
        }
        for (f2, i2, r2, rec_g) in &goodput {
            if f2 == fault && i2 == intensity && r2 != "none" {
                assert!(
                    rec_g > none_g,
                    "{fault}/{intensity}: {r2} goodput {rec_g} <= none {none_g}:\n{csv}"
                );
                compared += 1;
            }
        }
    }
    assert_eq!(compared, 4, "expected load+conn recovery-vs-none pairs");
    // Artifacts: load retry ledger, partition hedge report, conn retry
    // ledger — all well-formed JSON.
    let stems: Vec<&str> = artifacts.iter().map(|(s, _)| s.as_str()).collect();
    assert_eq!(
        stems,
        [
            "fig24_fault_matrix_load_retry_ledger",
            "fig24_fault_matrix_partition_hedge_report",
            "fig24_fault_matrix_conn_retry_ledger",
        ]
    );
    for (stem, json) in &artifacts {
        assert!(json.starts_with('{') && json.ends_with('}'), "{stem}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
    assert!(artifacts[1].1.contains("\"hedged_reroutes\":"));
    assert!(artifacts[2].1.contains("\"busy_shed\":"));
}

#[test]
fn fig20_latency_vs_load_has_finite_tails_and_overload_drops() {
    scale_down();
    let t = figures::fig20_latency_vs_load();
    // 4 load levels × 3 systems.
    assert_eq!(t.len(), 12);
    let csv = t.to_csv();
    let mut any_drops = false;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        // p50/p90/p95/p99 are finite, parseable, and ordered.
        let p50: f64 = cells[2].parse().unwrap();
        let p95: f64 = cells[4].parse().unwrap();
        let p99: f64 = cells[5].parse().unwrap();
        assert!(p50.is_finite() && p95.is_finite() && p99.is_finite());
        assert!(p50 <= p95 && p95 <= p99, "percentiles unordered: {line}");
        let drop_pct: f64 = cells[6].parse().unwrap();
        assert!((0.0..=100.0).contains(&drop_pct));
        if drop_pct > 0.0 {
            any_drops = true;
        }
    }
    assert!(
        any_drops,
        "the overload leg of the curve must shed load:\n{csv}"
    );
    assert!(csv.contains("CoServe") && csv.contains("Samba-CoE"));
}
